"""LRU replacement state for one cache set.

A set is an ordered list of entries with the LRU entry at index 0 and the
MRU entry at the end. The list never exceeds the associativity. Entries are
small mutable records so the shared cache can track per-line owner and dirty
state without a parallel structure.
"""

from __future__ import annotations

from typing import List, Optional


class Line:
    """One cache line: tag plus owner/dirty metadata."""

    __slots__ = ("tag", "owner", "dirty")

    def __init__(self, tag: int, owner: int = 0, dirty: bool = False) -> None:
        self.tag = tag
        self.owner = owner
        self.dirty = dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Line(tag={self.tag:#x}, owner={self.owner}, dirty={self.dirty})"


class LruSet:
    """An LRU-ordered cache set of bounded associativity."""

    __slots__ = ("associativity", "lines")

    def __init__(self, associativity: int) -> None:
        self.associativity = associativity
        self.lines: List[Line] = []

    def find(self, tag: int) -> Optional[Line]:
        """Return the line with ``tag`` without touching LRU order."""
        for line in self.lines:
            if line.tag == tag:
                return line
        return None

    def stack_position(self, tag: int) -> Optional[int]:
        """Return the MRU-stack distance of ``tag`` (0 = MRU).

        This is the quantity UMON-style monitors histogram: a hit at stack
        position ``p`` would still be a hit with any allocation of at least
        ``p + 1`` ways.
        """
        for i, line in enumerate(reversed(self.lines)):
            if line.tag == tag:
                return i
        return None

    def touch(self, line: Line) -> None:
        """Promote ``line`` to MRU."""
        self.lines.remove(line)
        self.lines.append(line)

    def insert(self, line: Line) -> Optional[Line]:
        """Insert ``line`` as MRU, evicting and returning the LRU victim
        if the set is full."""
        victim = None
        if len(self.lines) >= self.associativity:
            victim = self.lines.pop(0)
        self.lines.append(line)
        return victim

    def insert_with_quota(self, line: Line, quotas: List[int]) -> Optional[Line]:
        """Insert ``line`` respecting per-owner way quotas (UCP-style).

        If the set is full, the victim is the LRU line among owners whose
        current occupancy in this set exceeds their quota; if every owner is
        within quota (possible because quotas are enforced lazily), the
        victim is the LRU line of the inserting owner, falling back to the
        global LRU line.
        """
        if len(self.lines) < self.associativity:
            self.lines.append(line)
            return None

        counts = [0] * len(quotas)
        for resident in self.lines:
            counts[resident.owner] += 1

        victim = None
        for resident in self.lines:  # LRU first
            if counts[resident.owner] > quotas[resident.owner]:
                victim = resident
                break
        if victim is None:
            for resident in self.lines:
                if resident.owner == line.owner:
                    victim = resident
                    break
        if victim is None:
            victim = self.lines[0]
        self.lines.remove(victim)
        self.lines.append(line)
        return victim

    def evict(self, tag: int) -> Optional[Line]:
        """Remove and return the line with ``tag`` if present (back-invalidation)."""
        line = self.find(tag)
        if line is not None:
            self.lines.remove(line)
        return line

    def occupancy(self) -> int:
        return len(self.lines)
