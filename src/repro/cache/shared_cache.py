"""The shared last-level cache.

Extends the basic set-associative cache with the features the paper's
mechanisms need:

* per-core hit/miss statistics (ASM's ``CAR_shared`` counters),
* per-core way-quota partitioning (UCP / ASM-Cache / MCFQ enforcement),
* tracking of which core evicted whose line (feeds FST's pollution filters).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.cache.cache import AccessResult
from repro.cache.replacement import Line, LruSet
from repro.config import CacheConfig

# Called as eviction_listener(victim_line_addr, victim_owner, evictor_core).
EvictionListener = Callable[[int, int, int], None]

# Shared result objects for the outcomes that carry no per-access payload.
# ``access``/``allocate`` sit on the simulator's hottest path; callers treat
# the result as read-only, so one allocation can serve every hit and every
# victimless miss.
_HIT = AccessResult(hit=True)
_MISS_NO_VICTIM = AccessResult(hit=False)


class SharedCache:
    """A shared, optionally way-partitioned, set-associative LRU cache."""

    def __init__(self, config: CacheConfig, num_cores: int) -> None:
        config.validate()
        self.config = config
        self.num_cores = num_cores
        self.num_sets = config.num_sets
        self.sets: List[LruSet] = [
            LruSet(config.associativity) for _ in range(self.num_sets)
        ]
        self.partition: Optional[List[int]] = None
        self.hits = [0] * num_cores
        self.misses = [0] * num_cores
        self._eviction_listeners: List[EvictionListener] = []

    def add_eviction_listener(self, listener: EvictionListener) -> None:
        self._eviction_listeners.append(listener)

    def set_partition(self, allocation: Optional[List[int]]) -> None:
        """Install a way-quota partition (one entry per core) or ``None``
        to return to unconstrained shared LRU.

        Quotas are enforced lazily, as in UCP: existing over-quota lines are
        evicted first as new lines arrive, rather than flushed eagerly.
        """
        if allocation is not None:
            if len(allocation) != self.num_cores:
                raise ValueError("allocation must have one entry per core")
            if sum(allocation) != self.config.associativity:
                raise ValueError(
                    "allocation must sum to the cache associativity "
                    f"({sum(allocation)} != {self.config.associativity})"
                )
            if min(allocation) < 0:
                raise ValueError("allocations must be non-negative")
        self.partition = list(allocation) if allocation is not None else None

    def _set_and_tag(self, line_addr: int):
        return self.sets[line_addr % self.num_sets], line_addr // self.num_sets

    def contains(self, line_addr: int) -> bool:
        cache_set, tag = self._set_and_tag(line_addr)
        return cache_set.find(tag) is not None

    def access(self, core: int, line_addr: int, is_write: bool = False) -> AccessResult:
        num_sets = self.num_sets
        index = line_addr % num_sets
        cache_set = self.sets[index]
        tag = line_addr // num_sets
        line = cache_set.find(tag)
        if line is not None:
            self.hits[core] += 1
            cache_set.touch(line)
            if is_write:
                line.dirty = True
            return _HIT

        self.misses[core] += 1
        new_line = Line(tag, owner=core, dirty=is_write)
        if self.partition is None:
            victim = cache_set.insert(new_line)
        else:
            victim = cache_set.insert_with_quota(new_line, self.partition)
        if victim is None:
            return _MISS_NO_VICTIM
        victim_addr = victim.tag * num_sets + index
        for listener in self._eviction_listeners:
            listener(victim_addr, victim.owner, core)
        return AccessResult(
            hit=False,
            evicted_line_addr=victim_addr,
            writeback_line_addr=victim_addr if victim.dirty else None,
            victim_owner=victim.owner,
        )

    def allocate(self, core: int, line_addr: int) -> AccessResult:
        """Insert a line without demand-access statistics (prefetch fill).

        If the line is already resident this is a no-op (no LRU touch); a
        prefetch must not look like a demand reuse.
        """
        cache_set, tag = self._set_and_tag(line_addr)
        if cache_set.find(tag) is not None:
            return _HIT
        new_line = Line(tag, owner=core, dirty=False)
        if self.partition is None:
            victim = cache_set.insert(new_line)
        else:
            victim = cache_set.insert_with_quota(new_line, self.partition)
        if victim is None:
            return _MISS_NO_VICTIM
        victim_addr = victim.tag * self.num_sets + (line_addr % self.num_sets)
        for listener in self._eviction_listeners:
            listener(victim_addr, victim.owner, core)
        return AccessResult(
            hit=False,
            evicted_line_addr=victim_addr,
            writeback_line_addr=victim_addr if victim.dirty else None,
            victim_owner=victim.owner,
        )

    def occupancy_of(self, core: int) -> int:
        """Total number of lines currently owned by ``core``."""
        return sum(
            1
            for cache_set in self.sets
            for line in cache_set.lines
            if line.owner == core
        )

    def reset_stats(self) -> None:
        self.hits = [0] * self.num_cores
        self.misses = [0] * self.num_cores

    def accesses_of(self, core: int) -> int:
        return self.hits[core] + self.misses[core]
