"""Cache hierarchy: private caches, shared LLC, auxiliary tag stores."""

from repro.cache.cache import AccessResult, SetAssocCache
from repro.cache.shared_cache import SharedCache
from repro.cache.auxtag import AuxiliaryTagStore
from repro.cache.bloom import CountingBloomFilter
from repro.cache.pollution_filter import PollutionFilter

__all__ = [
    "AccessResult",
    "SetAssocCache",
    "SharedCache",
    "AuxiliaryTagStore",
    "CountingBloomFilter",
    "PollutionFilter",
]
