"""Fault-injection specification for telemetry counter reads.

Each :class:`TelemetrySpec` names one hardware failure mode, a fault rate
and a seed. The classes map to the counters the paper's mechanism relies
on (see DESIGN.md for the full mapping):

``saturation``
    N-bit saturating counters stick at ``2**counter_bits - 1`` (readers
    can detect the all-ones pattern, so a saturated read is flagged).
``wraparound``
    N-bit counters overflow silently (value modulo ``2**counter_bits``);
    only cross-counter conservation checks can catch it.
``dropped_read``
    A quantum-boundary counter read fails and returns zero (the read
    transaction errors out, so the reader knows).
``delayed_read``
    A quantum-boundary read returns the *previous* read's value — the
    telemetry mailbox was not updated in time (detectable: the sample is
    stamped stale).
``ats_corruption``
    Sampled auxiliary-tag-store hit counters (Section 4.4) are perturbed
    upward — a corrupted set sample inflates the sampled hit counts.
    Silent unless the value violates ``hits <= accesses``.
``epoch_glitch``
    The epoch-ownership register misattributes an epoch to the wrong
    application (Section 4.2); the parity check on the register flags the
    glitch, but the epoch counters are already polluted.

All randomness is derived from ``sha256`` digests of the (seed, site)
tuple, never from ``random`` state or ``hash()``, so fault streams are
bit-reproducible across processes and independent of read order changes
elsewhere in the simulator.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple

FAULT_CLASSES: Tuple[str, ...] = (
    "saturation",
    "wraparound",
    "dropped_read",
    "delayed_read",
    "ats_corruption",
    "epoch_glitch",
)

#: Rate used by ``TelemetrySpec.parse`` when the CLI gives only a class.
DEFAULT_FAULT_RATE = 0.01


@dataclass(frozen=True)
class TelemetrySpec:
    """One deterministic telemetry-fault configuration.

    ``counter_bits`` is the width of the narrow hardware counters that
    saturation/wraparound faults select; 8 bits keeps the failure modes
    reachable in the scaled-down simulator configurations.
    """

    fault_class: str
    rate: float
    seed: int = 0
    counter_bits: int = 8

    def __post_init__(self) -> None:
        if self.fault_class not in FAULT_CLASSES:
            raise ValueError(
                f"unknown fault class {self.fault_class!r}; "
                f"valid: {', '.join(FAULT_CLASSES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.counter_bits < 2:
            raise ValueError("counter_bits must be at least 2")

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "TelemetrySpec":
        """Parse the CLI form ``CLASS`` or ``CLASS:RATE``."""
        name, _, rate_text = text.partition(":")
        name = name.strip().replace("-", "_")
        try:
            rate = float(rate_text) if rate_text else DEFAULT_FAULT_RATE
        except ValueError:
            raise ValueError(
                f"bad fault rate {rate_text!r} in {text!r} "
                "(expected CLASS or CLASS:RATE)"
            ) from None
        return cls(fault_class=name, rate=rate, seed=seed)

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "TelemetrySpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})  # type: ignore[arg-type]


def fault_u01(seed: int, salt: str, *site: object) -> float:
    """Deterministic uniform-[0,1) draw keyed by (seed, salt, site).

    Built on sha256 of the site's ``repr`` — stable across processes and
    interpreter runs, unlike ``hash()`` (randomised for strings) or any
    shared ``random.Random`` stream (which read-order changes would
    perturb).
    """
    payload = repr((seed, salt, site)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


__all__ = ["DEFAULT_FAULT_RATE", "FAULT_CLASSES", "TelemetrySpec", "fault_u01"]
