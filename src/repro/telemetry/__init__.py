"""Hardware-realistic telemetry faults for the slowdown estimators.

ASM's whole pipeline is driven by hardware counters (Table 1, Sections
4.3/4.4) that a production telemetry path reads imperfectly. This package
models that imperfection: models allocate a :class:`CounterBank`, write
raw events into its :class:`CounterVec` counters, and *read* every value
back through the bank, where a seeded, deterministic fault injector
(:class:`TelemetrySpec`) can saturate, wrap, drop, delay or corrupt the
sampled values. With no spec attached the bank is a plain pass-through
with zero behavioural change.
"""

from repro.telemetry.counters import CounterBank, CounterVec, ExternalSample
from repro.telemetry.spec import FAULT_CLASSES, TelemetrySpec

__all__ = [
    "CounterBank",
    "CounterVec",
    "ExternalSample",
    "FAULT_CLASSES",
    "TelemetrySpec",
]
