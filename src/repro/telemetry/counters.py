"""Counter bank: the guarded read path between simulator and models.

A model allocates one :class:`CounterBank` when it attaches (salted by its
name, so every model owns an independent hardware counter block) and
routes *all* of its telemetry through it:

* event counters it increments itself become :class:`CounterVec` entries
  (``vec.add(core)`` on the write path, ``vec.read(core)`` at the quantum
  boundary);
* counters owned by the simulator (memory-controller queueing cycles,
  per-request interference cycles, busy-cycle trackers) are registered in
  ``attach()`` as :class:`ExternalSample` readers and sampled through the
  bank — the TEL001 lint rule forbids models from touching those raw
  counters anywhere else.

With no :class:`~repro.telemetry.spec.TelemetrySpec` the write path is a
plain list increment and ``read`` returns the true value: a fault-free
run is bit-identical to one without the bank. With a spec, reads pass
through the configured fault class; detectable faults (saturated
patterns, failed or stale read transactions, epoch-register parity
errors) are recorded per core and collected by the model's estimate
guard via :meth:`CounterBank.collect_flags`.

Write-path faults are applied at read time: for monotone counters,
capping each increment (saturation) or reducing it modulo ``2**bits``
(wraparound) commutes with doing so once on the accumulated total, so
the hot increment path stays untouched. Simulator-side oracles (the
resilience invariant checker) index a vec directly (``vec[core]``) and
always see the true value.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.telemetry.spec import TelemetrySpec, fault_u01

Number = Union[int, float]

#: Largest upward perturbation an ATS set-sample corruption applies.
_CORRUPTION_SPAN = 64

#: Flag strings surfaced to the estimate guards (hard violations).
FLAG_SATURATED = "saturated-read"
FLAG_DROPPED = "dropped-read"
FLAG_DELAYED = "delayed-read"
FLAG_EPOCH_GLITCH = "epoch-ownership-glitch"


class CounterVec:
    """One per-core hardware counter the model increments itself."""

    __slots__ = ("name", "kind", "values", "_bank", "_narrow", "_stale", "_reads")

    def __init__(self, bank: "CounterBank", name: str, kind: str) -> None:
        self.name = name
        self.kind = kind
        self._bank = bank
        n = bank.num_cores
        self.values: List[int] = [0] * n
        self._narrow = bank.narrow_cores(name)
        # Last width-faulted value each core's telemetry path sampled
        # (what a delayed read replays) and a per-core read index so every
        # read site draws an independent fault coin.
        self._stale: List[Number] = [0] * n
        self._reads = [0] * n

    # -- write path (hot) ----------------------------------------------
    def add(self, core: int, amount: int = 1) -> None:
        self.values[core] += amount

    # -- oracle view (simulator-side invariant checkers, white-box tests)
    def __getitem__(self, core: int) -> int:
        return self.values[core]

    def __setitem__(self, core: int, value: int) -> None:
        self.values[core] = value

    def __iter__(self) -> Iterator[int]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    # -- guarded read path ---------------------------------------------
    def read(self, core: int) -> Number:
        value: Number = self.values[core]
        bank = self._bank
        if bank.spec is None:
            return value
        if self._narrow is not None and self._narrow[core]:
            value = bank.apply_width_fault(value, core, self.name)
        index = self._reads[core]
        self._reads[core] = index + 1
        out = bank.apply_read_fault(
            value, core, self.name, self.kind, self._stale[core], index
        )
        self._stale[core] = value
        return out

    def reset(self) -> None:
        """Zero the counters in place (aliased ``values`` lists stay live)."""
        values = self.values
        for core in range(len(values)):
            values[core] = 0


class ExternalSample:
    """A simulator-owned counter sampled through the bank.

    ``reader(core)`` fetches the raw value; models register the reader in
    ``attach()`` and afterwards only call :meth:`read` (reset-per-quantum
    counters) or :meth:`rebase`/:meth:`delta` (cumulative counters like
    the controller's queueing cycles)."""

    __slots__ = ("name", "kind", "_bank", "_reader", "_narrow", "_base",
                 "_stale", "_reads")

    def __init__(
        self,
        bank: "CounterBank",
        name: str,
        reader: Callable[[int], Number],
        kind: str,
    ) -> None:
        self.name = name
        self.kind = kind
        self._bank = bank
        self._reader = reader
        self._narrow = bank.narrow_cores(name)
        n = bank.num_cores
        self._base: List[Number] = [0] * n
        self._stale: List[Number] = [0] * n
        self._reads = [0] * n

    def rebase(self) -> None:
        """Snapshot the raw values as the new delta baseline.

        The snapshot is firmware bookkeeping, not a telemetry read: faults
        apply to the quantum-boundary ``delta`` sample, not the baseline."""
        for core in range(self._bank.num_cores):
            self._base[core] = self._reader(core)

    def read(self, core: int) -> Number:
        return self._finish(core, self._reader(core))

    def delta(self, core: int) -> Number:
        return self._finish(core, self._reader(core) - self._base[core])

    def _finish(self, core: int, value: Number) -> Number:
        bank = self._bank
        if bank.spec is None:
            return value
        if self._narrow is not None and self._narrow[core]:
            value = bank.apply_width_fault(value, core, self.name)
        index = self._reads[core]
        self._reads[core] = index + 1
        out = bank.apply_read_fault(
            value, core, self.name, self.kind, self._stale[core], index
        )
        self._stale[core] = value
        return out


class CounterBank:
    """All of one model's telemetry counters plus its fault injector."""

    def __init__(
        self,
        num_cores: int,
        spec: Optional[TelemetrySpec] = None,
        salt: str = "",
    ) -> None:
        self.num_cores = num_cores
        # A zero-rate spec is an injector that never fires; keep it (the
        # read path must then return true values bit-for-bit).
        self.spec = spec
        self.salt = salt
        self.vecs: Dict[str, CounterVec] = {}
        self.externals: Dict[str, ExternalSample] = {}
        self.faults_injected = 0
        self._flags: List[List[str]] = [[] for _ in range(num_cores)]
        self._epoch_index = 0

    # -- registration (models call these from attach()) ----------------
    def vec(self, name: str, kind: str = "counter") -> CounterVec:
        if name in self.vecs:
            raise ValueError(f"counter {name!r} already registered")
        vec = CounterVec(self, name, kind)
        self.vecs[name] = vec
        return vec

    def external(
        self,
        name: str,
        reader: Callable[[int], Number],
        kind: str = "counter",
    ) -> ExternalSample:
        if name in self.externals:
            raise ValueError(f"external counter {name!r} already registered")
        sample = ExternalSample(self, name, reader, kind)
        self.externals[name] = sample
        return sample

    # -- fault machinery ------------------------------------------------
    def narrow_cores(self, name: str) -> Optional[List[bool]]:
        """Which per-core instances of ``name`` are narrow N-bit counters.

        Only saturation/wraparound use narrow counters; selection is a
        deterministic per-(counter, core) draw at rate ``spec.rate``."""
        spec = self.spec
        if spec is None or spec.fault_class not in ("saturation", "wraparound"):
            return None
        return [
            fault_u01(spec.seed, self.salt, name, core, "narrow") < spec.rate
            for core in range(self.num_cores)
        ]

    def apply_width_fault(self, value: Number, core: int, name: str) -> Number:
        spec = self.spec
        assert spec is not None
        limit = 1 << spec.counter_bits
        if spec.fault_class == "saturation":
            if value >= limit - 1:
                # The all-ones pattern is recognisably saturated.
                self.flag(core, FLAG_SATURATED)
                return limit - 1
            return value
        # Wraparound overflows silently.
        return value % limit

    def apply_read_fault(
        self,
        value: Number,
        core: int,
        name: str,
        kind: str,
        stale: Number,
        index: int,
    ) -> Number:
        spec = self.spec
        assert spec is not None
        fc = spec.fault_class
        if fc == "dropped_read":
            if fault_u01(spec.seed, self.salt, name, core, "read", index) < spec.rate:
                self.flag(core, FLAG_DROPPED)
                return 0
        elif fc == "delayed_read":
            if fault_u01(spec.seed, self.salt, name, core, "read", index) < spec.rate:
                self.flag(core, FLAG_DELAYED)
                return stale
        elif fc == "ats_corruption" and kind == "ats":
            if fault_u01(spec.seed, self.salt, name, core, "read", index) < spec.rate:
                # Silent: a corrupted set sample just reads wrong. Only the
                # hits <= accesses invariant can expose it.
                self.faults_injected += 1
                magnitude = fault_u01(spec.seed, self.salt, name, core, "mag", index)
                return value + 1 + int(magnitude * (_CORRUPTION_SPAN - 1))
        return value

    def attribute_epoch(self, owner: int) -> int:
        """Epoch-ownership glitch: possibly misattribute this epoch.

        The controller still prioritises the true owner (the glitch is in
        the *telemetry* ownership register, not the scheduler), so the
        model meanwhile measures the wrong application's 'alone-like'
        behaviour. The register's parity check detects that a glitch
        happened — both involved cores are flagged — but the epoch
        counters for this quantum are already polluted."""
        spec = self.spec
        if (
            spec is None
            or spec.fault_class != "epoch_glitch"
            or self.num_cores < 2
        ):
            return owner
        index = self._epoch_index
        self._epoch_index = index + 1
        if fault_u01(spec.seed, self.salt, "epoch", index) < spec.rate:
            shift = 1 + int(
                fault_u01(spec.seed, self.salt, "epoch-victim", index)
                * (self.num_cores - 1)
            )
            attributed = (owner + shift) % self.num_cores
            self.flag(owner, FLAG_EPOCH_GLITCH)
            self.flag(attributed, FLAG_EPOCH_GLITCH)
            return attributed
        return owner

    # -- flags -----------------------------------------------------------
    def flag(self, core: int, reason: str) -> None:
        flags = self._flags[core]
        if reason not in flags:
            flags.append(reason)
        self.faults_injected += 1

    def collect_flags(self, core: int) -> List[str]:
        """Pop and return the detected-fault flags for ``core``."""
        flags = self._flags[core]
        self._flags[core] = []
        return flags

    # -- lifecycle -------------------------------------------------------
    def reset(self) -> None:
        """Zero every registered vec (quantum boundary)."""
        for vec in self.vecs.values():
            vec.reset()


__all__ = [
    "CounterBank",
    "CounterVec",
    "ExternalSample",
    "FLAG_DELAYED",
    "FLAG_DROPPED",
    "FLAG_EPOCH_GLITCH",
    "FLAG_SATURATED",
]
