"""The deterministic tenant job stream a fleet serves.

Tenants are the cloud-tier analogue of the paper's multiprogrammed
workloads: each one is a synthetic application drawn from the catalog
(or a Figure-1-style hog, when the spec asks for a hog fraction) with a
demand measured in quanta and an arrival round. The stream mirrors
:func:`~repro.workloads.mixes.random_mixes` determinism: tenant ``i``
depends only on ``(spec.seed, i)`` — not on how many tenants exist, nor
on anything the scheduler later decides — so two fleets with the same
spec agree on every tenant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.cloud.spec import FleetSpec
from repro.workloads.catalog import CATALOG
from repro.workloads.hog import hog_spec
from repro.workloads.synthetic import AppSpec


@dataclass(frozen=True)
class Tenant:
    """One unit of fleet demand: an application with an SLA."""

    tenant_id: int
    spec: AppSpec
    demand_quanta: int
    arrival_round: int
    is_hog: bool = False

    @property
    def name(self) -> str:
        """Stable display name (``t03:mcf``)."""
        return f"t{self.tenant_id:03d}:{self.spec.name}"


def tenant_stream(spec: FleetSpec) -> List[Tenant]:
    """Draw the full tenant arrival stream for ``spec``, in id order.

    Arrivals are batched ``spec.arrivals_per_round`` per round starting
    at round 0. Hog tenants (fraction ``spec.hog_fraction``) get a
    high-intensity :func:`~repro.workloads.hog.hog_spec`; the rest draw
    uniformly from the catalog.
    """
    pool = sorted(CATALOG.values(), key=lambda s: s.name)
    tenants: List[Tenant] = []
    for index in range(spec.num_tenants):
        rng = random.Random(spec.seed * 1_000_003 + 7919 * index)
        if rng.random() < spec.hog_fraction:
            app = hog_spec(
                intensity=0.5 + 0.5 * rng.random(),
                cache_pressure=rng.random(),
            )
            is_hog = True
        else:
            app = rng.choice(pool)
            is_hog = False
        tenants.append(
            Tenant(
                tenant_id=index,
                spec=app,
                demand_quanta=spec.tenant_quanta,
                arrival_round=index // spec.arrivals_per_round,
                is_hog=is_hog,
            )
        )
    return tenants


__all__ = ["Tenant", "tenant_stream"]
