"""The fleet-level chaos plane: seeded node faults per round.

Three failure modes, all drawn deterministically per ``(round, node)``
via :func:`~repro.telemetry.spec.fault_u01` so the fault schedule is
independent of placement decisions and process boundaries:

* **kill** — the node crashes at the start of the round: its tenants
  are evacuated back to the queue and the node stays down for
  ``restart_rounds`` rounds before restarting.
* **straggler** — the node runs but reports late: its telemetry is
  stale by the time the scheduler reads it, so the node's estimate
  confidence is capped below the policy floor for the round.
* **degrade** — the node's telemetry path corrupts counter reads: the
  node's cell runs under a :class:`~repro.telemetry.spec.TelemetrySpec`
  (the PR 4 injectors), feeding the scheduler degraded estimates with
  honestly reduced confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cloud.spec import FleetChaosSpec
from repro.telemetry.spec import TelemetrySpec, fault_u01

#: Confidence ceiling a straggler's stale telemetry can earn.
STRAGGLER_CONFIDENCE_CAP = 0.5


@dataclass(frozen=True)
class NodeEvents:
    """Chaos outcome for one (round, node): what goes wrong this round."""

    kill: bool
    straggler: bool
    telemetry: Optional[TelemetrySpec]


class FleetChaos:
    """Deterministic per-(round, node) fault drawer for one fleet."""

    def __init__(self, spec: FleetChaosSpec) -> None:
        self.spec = spec

    def events(self, round_index: int, node_id: int) -> NodeEvents:
        """The fault draw for ``node_id`` in ``round_index``.

        A killed node draws nothing else: it is down, not degraded.
        """
        spec = self.spec
        kill = (
            spec.node_kill_rate > 0.0
            and fault_u01(spec.seed, "fleet-kill", round_index, node_id)
            < spec.node_kill_rate
        )
        if kill:
            return NodeEvents(kill=True, straggler=False, telemetry=None)
        straggler = (
            spec.straggler_rate > 0.0
            and fault_u01(spec.seed, "fleet-straggler", round_index, node_id)
            < spec.straggler_rate
        )
        telemetry: Optional[TelemetrySpec] = None
        if (
            spec.telemetry_rate > 0.0
            and fault_u01(spec.seed, "fleet-telemetry", round_index, node_id)
            < spec.telemetry_rate
        ):
            telemetry = TelemetrySpec(
                fault_class=spec.telemetry_class,
                rate=spec.telemetry_fault_rate,
                seed=int(
                    fault_u01(
                        spec.seed, "fleet-telemetry-seed",
                        round_index, node_id,
                    )
                    * (1 << 31)
                ),
            )
        return NodeEvents(kill=False, straggler=straggler, telemetry=telemetry)


__all__ = ["FleetChaos", "NodeEvents", "STRAGGLER_CONFIDENCE_CAP"]
