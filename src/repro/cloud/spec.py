"""Frozen configuration for one fleet run.

Everything a fleet does — tenant arrivals, chaos draws, placement,
migration backoff, billing — derives deterministically from one
:class:`FleetSpec` (plus the :class:`~repro.config.SystemConfig` of the
nodes), so a same-seed replay reproduces the run bit-identically and a
crash-resumed supervisor replays into the same byte stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.analytic.runner import FIDELITY_TIERS
from repro.harness.runner import ModelFactory
from repro.models.base import POLICY_CONFIDENCE_FLOOR
from repro.telemetry.spec import FAULT_CLASSES

#: Placement policies the scheduler implements.
PLACEMENT_POLICIES: Tuple[str, ...] = ("asm", "naive")

#: Billing modes: slowdown-fair (paper Section 7.3) or flat per-quantum.
BILLING_MODES: Tuple[str, ...] = ("fair", "flat")


@dataclass(frozen=True)
class FleetChaosSpec:
    """Seeded fleet-level fault plan: which nodes misbehave, and when.

    All rates are per-(round, node) probabilities drawn via
    :func:`~repro.telemetry.spec.fault_u01`, so the fault schedule is a
    pure function of ``(seed, round, node)`` — independent of placement
    decisions, read order, and process boundaries.
    """

    node_kill_rate: float = 0.0
    straggler_rate: float = 0.0
    telemetry_rate: float = 0.0
    telemetry_class: str = "dropped_read"
    telemetry_fault_rate: float = 0.2
    restart_rounds: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("node_kill_rate", "straggler_rate", "telemetry_rate",
                     "telemetry_fault_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.telemetry_class not in FAULT_CLASSES:
            raise ValueError(
                f"unknown telemetry class {self.telemetry_class!r}; "
                f"valid: {', '.join(FAULT_CLASSES)}"
            )
        if self.restart_rounds < 1:
            raise ValueError("restart_rounds must be >= 1")

    @property
    def any_faults(self) -> bool:
        """Whether this plan can inject anything at all."""
        return (self.node_kill_rate > 0 or self.straggler_rate > 0
                or self.telemetry_rate > 0)


@dataclass(frozen=True)
class FleetSpec:
    """One fleet run: topology, tenant stream, policies, chaos.

    ``model_builder`` overrides the per-node slowdown-model recipe (a
    module-level callable, pickled by reference into the cell workers;
    called as ``model_builder(config, *model_builder_args)``) — the
    hook the determinism tests use to inject worker crashes.
    """

    name: str = "fleet"
    num_nodes: int = 4
    cores_per_node: int = 2
    rounds: int = 8
    quanta_per_round: int = 1
    seed: int = 0
    num_tenants: int = 8
    arrivals_per_round: int = 4
    tenant_quanta: int = 2
    sla_slowdown: float = 3.0
    placement: str = "asm"
    confidence_floor: float = POLICY_CONFIDENCE_FLOOR
    max_queue: int = 16
    hog_fraction: float = 0.0
    base_rate: float = 1.0
    billing: str = "fair"
    engine: str = "event"
    # Fidelity tier for the node rounds ("analytical" | "columnar" |
    # "event", see docs/fidelity.md). Empty means ``engine`` governs.
    # "analytical" runs every node round through the closed-form
    # surrogate (repro.analytic): placement/SLA/billing still read the
    # "asm" estimates, but telemetry chaos has nothing to corrupt.
    fidelity: str = ""
    migration_max_attempts: int = 3
    migration_backoff_rounds: float = 1.0
    chaos: FleetChaosSpec = field(default_factory=FleetChaosSpec)
    model_builder: Optional[Callable[..., Dict[str, ModelFactory]]] = None
    model_builder_args: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.quanta_per_round < 1:
            raise ValueError("quanta_per_round must be >= 1")
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if self.arrivals_per_round < 1:
            raise ValueError("arrivals_per_round must be >= 1")
        if self.tenant_quanta < 1:
            raise ValueError("tenant_quanta must be >= 1")
        if self.sla_slowdown < 1.0:
            raise ValueError("sla_slowdown must be >= 1")
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement {self.placement!r}; "
                f"valid: {', '.join(PLACEMENT_POLICIES)}"
            )
        if self.billing not in BILLING_MODES:
            raise ValueError(
                f"unknown billing mode {self.billing!r}; "
                f"valid: {', '.join(BILLING_MODES)}"
            )
        if not 0.0 < self.confidence_floor <= 1.0:
            raise ValueError("confidence_floor must be in (0, 1]")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if not 0.0 <= self.hog_fraction <= 1.0:
            raise ValueError("hog_fraction must be in [0, 1]")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if self.engine not in ("event", "columnar"):
            raise ValueError("engine must be 'event' or 'columnar'")
        if self.fidelity and self.fidelity not in FIDELITY_TIERS:
            raise ValueError(
                f"unknown fidelity {self.fidelity!r}; "
                f"valid: {', '.join(FIDELITY_TIERS)} (or '' for engine)"
            )
        if self.migration_max_attempts < 1:
            raise ValueError("migration_max_attempts must be >= 1")
        if self.migration_backoff_rounds < 0:
            raise ValueError("migration_backoff_rounds must be >= 0")

    @property
    def total_cores(self) -> int:
        """Fleet-wide core count (the placement capacity ceiling)."""
        return self.num_nodes * self.cores_per_node


__all__ = [
    "BILLING_MODES",
    "FleetChaosSpec",
    "FleetSpec",
    "PLACEMENT_POLICIES",
]
