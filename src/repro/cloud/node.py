"""Node-level building blocks: state, model recipes, worst-case bound.

A *node* is one multi-core machine of the fleet. Its round of service
is exactly one campaign cell: the tenants placed on it become a
:class:`~repro.workloads.mixes.WorkloadMix` (one tenant per core), and
the existing simulator — event or columnar engine — runs the quantum(s)
with an ASM model attached. The fleet scheduler reads the resulting
per-core estimates, confidences, and ground-truth slowdowns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.cloud.tenants import Tenant
from repro.config import SystemConfig
from repro.harness.runner import ModelFactory
from repro.models.asm import AsmModel
from repro.workloads.mixes import WorkloadMix


def node_model_factories(config: SystemConfig) -> Dict[str, ModelFactory]:
    """Default per-node slowdown-model recipe: one ASM per cell.

    Module-level so :class:`~repro.parallel.CellSpec` can pickle it by
    reference into the worker processes.
    """
    sets = config.ats_sampled_sets
    return {"asm": lambda: AsmModel(sampled_sets=sets)}


def node_mix(
    fleet_name: str,
    fleet_seed: int,
    round_index: int,
    node_id: int,
    tenants: Sequence[Tenant],
) -> WorkloadMix:
    """The workload mix node ``node_id`` runs this round.

    The mix *seed* is the fleet seed (not a per-round derivation): the
    alone-run cache keys on ``(spec, mix.seed, core, config, cycles)``,
    so keeping the seed constant lets a tenant's alone profile be
    computed once and reused across every round and node where it lands
    on the same core index.
    """
    return WorkloadMix(
        name=f"{fleet_name}-r{round_index:03d}-n{node_id:02d}-"
        + "+".join(t.name for t in tenants),
        specs=tuple(t.spec for t in tenants),
        seed=fleet_seed,
    )


def worst_case_slowdown_bound(config: SystemConfig, corunners: int) -> float:
    """Yun-style worst-case interference slowdown bound for one core.

    In the spirit of the parallelism-aware worst-case memory
    interference delay analysis (PAPERS.md, arXiv:1407.7448): each of a
    core's memory requests can be delayed by at most one older request
    per competing core under FR-FCFS prioritisation. Requests to
    distinct banks overlap — only the shared data bus serialises them —
    so of the ``corunners`` interfering requests, at most
    ``ceil(corunners / banks)`` pay the full row-conflict service time
    (precharge + activate + CAS + burst) and the rest pay only the bus
    transfer. Normalising by the best-case (row-hit) service time gives
    a slowdown bound that holds regardless of how corrupted the
    telemetry is — the hard backstop SLA decisions fall back on when
    estimate confidence degrades.
    """
    if corunners < 0:
        raise ValueError("corunners must be >= 0")
    if corunners == 0:
        return 1.0
    dram = config.dram
    service_min = float(dram.cas_latency + dram.burst_time)
    service_max = float(
        dram.trp + dram.trcd + dram.cas_latency + dram.burst_time
    )
    conflicts = math.ceil(corunners / dram.total_banks)
    delay = (
        conflicts * service_max
        + (corunners - conflicts) * float(dram.burst_time)
    )
    return (service_min + delay) / service_min


@dataclass
class NodeState:
    """Mutable per-node scheduler state across rounds."""

    node_id: int
    cores: int
    tenants: List[int] = field(default_factory=list)
    #: First round in which the node is up again (0 = always was).
    down_until: int = 0
    kills: int = 0
    served_rounds: int = 0

    def is_up(self, round_index: int) -> bool:
        """Whether the node can serve ``round_index``."""
        return round_index >= self.down_until

    @property
    def free_cores(self) -> int:
        """Unoccupied cores (placement capacity this round)."""
        return self.cores - len(self.tenants)

    def kill(self, round_index: int, restart_rounds: int) -> List[int]:
        """Crash the node: evacuate tenants, stay down, count the kill."""
        evacuated = list(self.tenants)
        self.tenants.clear()
        self.down_until = round_index + restart_rounds
        self.kills += 1
        return evacuated


__all__ = [
    "NodeState",
    "node_mix",
    "node_model_factories",
    "worst_case_slowdown_bound",
]
