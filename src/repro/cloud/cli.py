"""``repro cloud run|report`` — drive and inspect fleet runs.

``run`` builds a :class:`~repro.cloud.spec.FleetSpec` from flags, runs
it under a resumable campaign store, prints the fleet summary and the
per-round dashboard, and (with ``--out``) atomically writes the
deterministic digest JSON. ``report`` re-renders a finished (or
crashed) fleet from its durable stores without re-running anything —
the keyed ``fleet.jsonl``/``billing.jsonl`` logs plus the metrics
snapshots are the whole dashboard.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Any, Dict, List, Optional, Sequence

from repro.cloud.spec import (
    BILLING_MODES,
    FleetChaosSpec,
    FleetSpec,
    PLACEMENT_POLICIES,
)
from repro.models.base import POLICY_CONFIDENCE_FLOOR
from repro.telemetry.spec import FAULT_CLASSES

#: Default campaign store root for fleet runs.
DEFAULT_STORE = os.path.join("results", ".campaign", "cloud")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cloud",
        description="slowdown-aware fleet tier: run and report",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    run = sub.add_parser("run", help="run one fleet under a campaign store")
    run.add_argument("--name", default="fleet", help="fleet/store name")
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--cores", type=int, default=2,
                     help="cores (tenant slots) per node")
    run.add_argument("--rounds", type=int, default=8)
    run.add_argument("--quanta", type=int, default=1,
                     help="quanta each node simulates per round")
    run.add_argument("--tenants", type=int, default=8)
    run.add_argument("--arrivals", type=int, default=4,
                     help="tenant arrivals per round")
    run.add_argument("--tenant-quanta", type=int, default=2,
                     help="demand (quanta) per tenant")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--placement", choices=PLACEMENT_POLICIES,
                     default="asm")
    run.add_argument("--sla", type=float, default=3.0,
                     help="slowdown SLA promised to every tenant")
    run.add_argument("--floor", type=float, default=None,
                     help="confidence floor (default: policy floor)")
    run.add_argument("--hog-fraction", type=float, default=0.0)
    run.add_argument("--billing", choices=BILLING_MODES, default="fair")
    run.add_argument("--engine", choices=("event", "columnar"),
                     default="event")
    run.add_argument("--fidelity", choices=("analytical", "columnar", "event"),
                     default="",
                     help="fidelity tier for node rounds; 'analytical' is "
                          "the closed-form surrogate (see docs/fidelity.md); "
                          "default: --engine governs")
    run.add_argument("--workers", type=int, default=1)
    run.add_argument("--kill-rate", type=float, default=0.0)
    run.add_argument("--straggler-rate", type=float, default=0.0)
    run.add_argument("--telemetry-rate", type=float, default=0.0)
    run.add_argument("--telemetry-class", default="dropped_read",
                     choices=FAULT_CLASSES)
    run.add_argument("--chaos-seed", type=int, default=0)
    run.add_argument("--store", default=DEFAULT_STORE,
                     help="campaign store root ('' disables persistence)")
    run.add_argument("--resume", action="store_true",
                     help="resume from the store's checkpoints")
    run.add_argument("--quantum-cycles", type=int, default=None)
    run.add_argument("--epoch-cycles", type=int, default=None)
    run.add_argument("--out", default="",
                     help="write the digest JSON here (atomic)")

    report = sub.add_parser(
        "report", help="re-render a fleet from its durable stores"
    )
    report.add_argument("store", help="campaign store root of the fleet")
    report.add_argument("--name", default="fleet",
                        help="fleet name (metrics key)")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.cloud.fleet import FleetSupervisor
    from repro.config import scaled_config
    from repro.resilience.campaign import Campaign

    spec = FleetSpec(
        name=args.name,
        num_nodes=args.nodes,
        cores_per_node=args.cores,
        rounds=args.rounds,
        quanta_per_round=args.quanta,
        seed=args.seed,
        num_tenants=args.tenants,
        arrivals_per_round=args.arrivals,
        tenant_quanta=args.tenant_quanta,
        sla_slowdown=args.sla,
        placement=args.placement,
        hog_fraction=args.hog_fraction,
        billing=args.billing,
        engine=args.engine,
        fidelity=args.fidelity,
        confidence_floor=(
            args.floor
            if args.floor is not None
            else POLICY_CONFIDENCE_FLOOR
        ),
        chaos=FleetChaosSpec(
            node_kill_rate=args.kill_rate,
            straggler_rate=args.straggler_rate,
            telemetry_rate=args.telemetry_rate,
            telemetry_class=args.telemetry_class,
            seed=args.chaos_seed,
        ),
    )
    config = scaled_config()
    if args.quantum_cycles is not None:
        config = config.with_quantum(
            args.quantum_cycles,
            args.epoch_cycles or config.epoch_cycles,
        )
    store_dir = (
        os.path.join(args.store, args.name) if args.store else None
    )
    campaign = Campaign(
        f"cloud-{args.name}", store_dir,
        resume=args.resume, keep_going=True,
    )
    supervisor = FleetSupervisor(
        spec, config, campaign, workers=args.workers
    )
    result = supervisor.run()
    print(result.summary())
    print()
    from repro.obs.metrics import render_metric_series

    print(render_metric_series(supervisor.metrics.snapshots))
    print()
    print(campaign.summary())
    if args.out:
        from repro.durability.atomic import atomic_write_text

        atomic_write_text(
            args.out,
            json.dumps(result.digest(), sort_keys=True) + "\n",
        )
        print(f"digest written to {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.durability.store import KeyedLog
    from repro.obs.metrics import render_metric_series

    fleet_path = os.path.join(args.store, "fleet.jsonl")
    billing_path = os.path.join(args.store, "billing.jsonl")
    if not os.path.exists(fleet_path):
        print(f"no fleet log at {fleet_path}")
        return 1
    rounds = KeyedLog(fleet_path).records()
    billing = KeyedLog(billing_path).records()
    charges: Dict[int, float] = {}
    bound_basis = 0
    for record in billing:
        tenant_id = int(record["tenant_id"])
        charges[tenant_id] = (
            charges.get(tenant_id, 0.0) + float(record["charge"])
        )
        if record.get("basis") == "bound":
            bound_basis += 1
    print(f"fleet store {args.store}: {len(rounds)} round(s), "
          f"{len(billing)} billing record(s)")
    naive = sum(1 for r in rounds if r.get("mode") == "naive")
    kills = sum(len(r.get("kills", [])) for r in rounds)
    migrated = sum(len(r.get("migrated", [])) for r in rounds)
    violations = sum(len(r.get("violations", [])) for r in rounds)
    print(f"  modes: {len(rounds) - naive} asm / {naive} naive; "
          f"{kills} kill(s), {migrated} migration(s), "
          f"{violations} violation round-entries, "
          f"{bound_basis} bound-basis invoice line(s)")
    for record in rounds:
        placed = len(record.get("placements", []))
        print(f"  r{record['round']:04d} mode={record['mode']:5s} "
              f"conf={record['confidence_out']:.3f} placed={placed} "
              f"kills={record.get('kills', [])} "
              f"migrated={record.get('migrated', [])}")
    if charges:
        total = sum(charges.values())
        print(f"  billed total: {total:.3f} across "
              f"{len(charges)} tenant(s)")
    snapshots = _fleet_snapshots(args.store, args.name)
    if snapshots:
        print()
        print(render_metric_series(snapshots))
    return 0


def _fleet_snapshots(
    store: str, name: str
) -> Optional[List[Dict[str, Any]]]:
    """The fleet's persisted metrics snapshots, if any."""
    from repro.resilience.campaign import CampaignStore

    if not os.path.exists(os.path.join(store, "metrics.jsonl")):
        return None
    return CampaignStore(store).get_metrics(f"__fleet__:{name}")


def cloud_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro cloud`` verb."""
    args = _build_parser().parse_args(
        list(argv) if argv is not None else None
    )
    if args.verb == "run":
        return _cmd_run(args)
    return _cmd_report(args)


__all__ = ["cloud_main"]
