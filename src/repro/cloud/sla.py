"""SLA tracking: effective slowdowns with a worst-case backstop.

The scheduler promises each tenant a slowdown SLA. The paper's ASM
estimate is the primary signal, but a fleet cannot let SLA decisions
ride on a corrupted counter alone: when a node's estimate confidence
falls below the policy floor (telemetry faults, stragglers), the
*effective* slowdown used for SLA checks and billing falls back to the
Yun-style worst-case bound — pessimistic but sound. Both the decision
basis and the ground-truth ("oracle") violation are recorded, so the
experiments can report how often degraded telemetry changed a decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class SlaDecision:
    """One tenant-round SLA evaluation."""

    effective_slowdown: float
    basis: str  # "estimate" | "bound"
    violated: bool
    oracle_violated: bool


def effective_slowdown(
    estimate: float,
    confidence: float,
    bound: float,
    floor: float,
) -> SlaDecision:
    """Pick the slowdown SLA decisions should trust (without the SLA).

    Confident, finite estimates are used as-is (clamped to the bound —
    an estimate above the worst case is itself evidence of corruption);
    anything else falls back to the bound. The returned decision has
    ``violated``/``oracle_violated`` unset (``False``); use
    :meth:`SlaTracker.record` for the full evaluation.
    """
    if confidence >= floor and math.isfinite(estimate) and estimate >= 1.0:
        return SlaDecision(
            effective_slowdown=min(estimate, bound),
            basis="estimate",
            violated=False,
            oracle_violated=False,
        )
    return SlaDecision(
        effective_slowdown=bound, basis="bound",
        violated=False, oracle_violated=False,
    )


@dataclass
class TenantSla:
    """Cumulative SLA account for one tenant."""

    served_quanta: int = 0
    violations: int = 0
    oracle_violations: int = 0
    bound_decisions: int = 0


class SlaTracker:
    """Per-tenant SLA accounting across a fleet run."""

    def __init__(self, sla_slowdown: float, floor: float) -> None:
        if sla_slowdown < 1.0:
            raise ValueError("sla_slowdown must be >= 1")
        self.sla_slowdown = sla_slowdown
        self.floor = floor
        self._tenants: Dict[int, TenantSla] = {}

    def account(self, tenant_id: int) -> TenantSla:
        """The (auto-created) account for ``tenant_id``."""
        account = self._tenants.get(tenant_id)
        if account is None:
            account = TenantSla()
            self._tenants[tenant_id] = account
        return account

    def record(
        self,
        tenant_id: int,
        *,
        estimate: float,
        confidence: float,
        bound: float,
        actual: float,
        quanta: int,
    ) -> SlaDecision:
        """Evaluate one tenant-round and update the account."""
        picked = effective_slowdown(estimate, confidence, bound, self.floor)
        violated = picked.effective_slowdown > self.sla_slowdown
        oracle = math.isfinite(actual) and actual > self.sla_slowdown
        account = self.account(tenant_id)
        account.served_quanta += quanta
        if picked.basis == "bound":
            account.bound_decisions += 1
        if violated:
            account.violations += 1
        if oracle:
            account.oracle_violations += 1
        return SlaDecision(
            effective_slowdown=picked.effective_slowdown,
            basis=picked.basis,
            violated=violated,
            oracle_violated=oracle,
        )

    @property
    def total_violations(self) -> int:
        """Decision-basis violations across every tenant."""
        return sum(a.violations for a in self._tenants.values())

    @property
    def total_oracle_violations(self) -> int:
        """Ground-truth violations across every tenant."""
        return sum(a.oracle_violations for a in self._tenants.values())


__all__ = ["SlaDecision", "SlaTracker", "TenantSla", "effective_slowdown"]
