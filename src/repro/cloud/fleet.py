"""The crash-resumable fleet supervisor: rounds of place/run/settle.

One fleet run is a sequence of *rounds*. Each round:

1. the chaos plane draws per-node faults (kill/straggler/telemetry);
2. killed nodes evacuate their tenants back to the admission queue;
3. arrivals enter admission; the controller admits (or sheds) them;
4. the scheduler places admitted tenants — ASM-aware, or naive
   bin-packing when last round's fleet confidence is below the floor;
5. every occupied up node runs one campaign cell (the existing
   simulator, event or columnar engine) through
   :func:`repro.parallel.run_cells` — parallel fan-out is bit-identical
   to serial, and results checkpoint into the campaign store;
6. per-tenant estimates/confidence/ground truth are read back; SLA
   decisions use the estimate or the Yun-style worst-case bound
   (never a corrupted counter alone); violations trigger supervised
   migration; billing records are appended to the keyed store;
7. the round record (placements, mode, both confidences, every chaos
   and scheduling event) is appended to the keyed fleet store and the
   metrics registry snapshots.

Every decision derives from the spec, the seed, and simulator outputs,
so a same-seed replay is bit-identical — and because cell results
checkpoint in the campaign store and fleet/billing records live in
idempotent keyed checksummed logs, a supervisor SIGKILLed mid-run
resumes (``resume=True``) by replaying rounds from cached cells into
the exact byte stream an uninterrupted run would have written.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cloud.billing import BillingRecord, billing_key, charge_for
from repro.cloud.chaos import STRAGGLER_CONFIDENCE_CAP, FleetChaos, NodeEvents
from repro.cloud.node import node_mix, node_model_factories, worst_case_slowdown_bound
from repro.cloud.scheduler import FleetScheduler, node_breaker_key
from repro.cloud.sla import SlaTracker
from repro.cloud.spec import FleetSpec
from repro.analytic.runner import resolve_fidelity
from repro.cloud.admission import AdmissionController
from repro.cloud.tenants import Tenant, tenant_stream
from repro.config import SystemConfig
from repro.durability.store import KeyedLog
from repro.obs.metrics import MetricsRegistry
from repro.parallel import CellSpec, run_cells
from repro.resilience.campaign import Campaign

#: Model name the supervisor reads estimates from (the node recipe's).
MODEL_NAME = "asm"


def _mean_finite(values: List[float]) -> float:
    """Mean of the finite entries; ``inf`` when there are none (an
    unusable estimate must fail towards the worst-case bound)."""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return math.inf
    return sum(finite) / len(finite)


def _mean_actual(values: List[float]) -> float:
    """Mean ground-truth slowdown; ``nan`` when no quantum made
    progress (oracle violations cannot be judged)."""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return math.nan
    return sum(finite) / len(finite)


@dataclass
class FleetResult:
    """Everything one fleet run produced (and its durable digest)."""

    spec: FleetSpec
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    billing: List[BillingRecord] = field(default_factory=list)
    completed: List[int] = field(default_factory=list)
    shed: List[int] = field(default_factory=list)
    unserved: List[int] = field(default_factory=list)
    migrations: int = 0
    migration_denied: int = 0
    node_kills: int = 0
    node_cell_failures: int = 0
    straggler_rounds: int = 0
    degraded_node_rounds: int = 0
    asm_rounds: int = 0
    naive_rounds: int = 0
    sla_violations: int = 0
    oracle_violations: int = 0
    bound_decisions: int = 0

    @property
    def total_charged(self) -> float:
        """Sum of every invoice line."""
        return sum(r.charge for r in self.billing)

    def charges_by_tenant(self) -> Dict[int, float]:
        """Total charge per tenant id."""
        totals: Dict[int, float] = {}
        for record in self.billing:
            totals[record.tenant_id] = (
                totals.get(record.tenant_id, 0.0) + record.charge
            )
        return totals

    def digest(self) -> Dict[str, Any]:
        """Deterministic run fingerprint: every decision and invoice.

        Two runs with equal digests placed, migrated, degraded, and
        billed identically — the object the determinism drills compare.
        """
        return {
            "fleet": self.spec.name,
            "seed": self.spec.seed,
            "rounds": self.rounds,
            "billing": [r.to_json() for r in self.billing],
            "completed": self.completed,
            "shed": self.shed,
            "unserved": self.unserved,
            "counters": {
                "migrations": self.migrations,
                "migration_denied": self.migration_denied,
                "node_kills": self.node_kills,
                "node_cell_failures": self.node_cell_failures,
                "straggler_rounds": self.straggler_rounds,
                "degraded_node_rounds": self.degraded_node_rounds,
                "asm_rounds": self.asm_rounds,
                "naive_rounds": self.naive_rounds,
                "sla_violations": self.sla_violations,
                "oracle_violations": self.oracle_violations,
                "bound_decisions": self.bound_decisions,
            },
        }

    def summary(self) -> str:
        """One-paragraph human-readable outcome."""
        spec = self.spec
        lines = [
            f"fleet '{spec.name}': {spec.num_nodes} nodes x "
            f"{spec.cores_per_node} cores, {len(self.rounds)} round(s), "
            f"placement={spec.placement}",
            f"  tenants: {len(self.completed)} completed, "
            f"{len(self.shed)} shed, {len(self.unserved)} unserved "
            f"of {spec.num_tenants}",
            f"  placement rounds: {self.asm_rounds} asm, "
            f"{self.naive_rounds} naive"
            + (
                " (degraded)"
                if spec.placement == "asm" and self.naive_rounds
                else ""
            ),
            f"  chaos: {self.node_kills} node kill(s), "
            f"{self.straggler_rounds} straggler round(s), "
            f"{self.degraded_node_rounds} telemetry-degraded round(s), "
            f"{self.node_cell_failures} cell failure(s)",
            f"  SLA: {self.sla_violations} violation(s) "
            f"({self.oracle_violations} oracle), {self.migrations} "
            f"migration(s), {self.bound_decisions} bound-basis decision(s)",
            f"  billed: {self.total_charged:.3f} "
            f"({spec.billing} mode)",
        ]
        return "\n".join(lines)


class FleetSupervisor:
    """Runs one :class:`FleetSpec` under a campaign's durability."""

    def __init__(
        self,
        spec: FleetSpec,
        config: SystemConfig,
        campaign: Campaign,
        *,
        workers: int = 1,
    ) -> None:
        self.spec = spec
        # The declared fidelity tier overrides the engine ("" keeps it):
        # node rounds then dispatch through repro.analytic instead of a
        # simulator, and the store fingerprints the resolved engine.
        self.config = resolve_fidelity(
            config.with_engine(spec.engine), spec.fidelity
        )
        self.campaign = campaign
        # Node failures must degrade the round, not abort the fleet.
        self.campaign.keep_going = True
        self.workers = workers
        self.metrics = MetricsRegistry()
        self._fleet_log: Optional[KeyedLog] = None
        self._billing_log: Optional[KeyedLog] = None
        if campaign.store is not None:
            root = campaign.store.root
            self._fleet_log = KeyedLog(os.path.join(root, "fleet.jsonl"))
            self._billing_log = KeyedLog(os.path.join(root, "billing.jsonl"))

    # ------------------------------------------------------------------
    def _cell_for(
        self,
        round_index: int,
        node_id: int,
        tenants: List[Tenant],
        events: NodeEvents,
    ) -> CellSpec:
        spec = self.spec
        builder = spec.model_builder or node_model_factories
        return CellSpec(
            mix=node_mix(spec.name, spec.seed, round_index, node_id, tenants),
            config=self.config,
            quanta=spec.quanta_per_round,
            variant=f"{spec.name}:r{round_index:03d}:n{node_id:02d}",
            model_builder=builder,
            model_builder_args=(self.config,) + spec.model_builder_args,
            telemetry=events.telemetry,
            fidelity=spec.fidelity,
        )

    def _tenant_outcome(
        self, records: List[Any], core: int
    ) -> Tuple[float, float, float]:
        """(estimate, confidence, actual) for one core of a cell."""
        estimates: List[float] = []
        confidences: List[float] = []
        actuals: List[float] = []
        for record in records:
            model_estimates = record.estimates.get(MODEL_NAME)
            if model_estimates is not None:
                estimates.append(model_estimates[core])
            model_confidence = record.confidence.get(MODEL_NAME)
            if model_confidence is not None:
                confidences.append(model_confidence[core])
            actuals.append(record.actual_slowdowns[core])
        estimate = _mean_finite(estimates)
        confidence = min(confidences) if confidences else 1.0
        return estimate, confidence, _mean_actual(actuals)

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        """Serve the tenant stream; returns the full run account."""
        spec = self.spec
        result = FleetResult(spec=spec)
        stream = tenant_stream(spec)
        tenant_by_id = {t.tenant_id: t for t in stream}
        arrivals: Dict[int, List[Tenant]] = {}
        for tenant in stream:
            arrivals.setdefault(tenant.arrival_round, []).append(tenant)
        scheduler = FleetScheduler(spec)
        admission = AdmissionController(spec.max_queue, spec.confidence_floor)
        sla = SlaTracker(spec.sla_slowdown, spec.confidence_floor)
        chaos = FleetChaos(spec.chaos)
        served: Dict[int, int] = {t.tenant_id: 0 for t in stream}
        placement: Dict[int, int] = {}
        done: Dict[int, bool] = {}
        fleet_confidence = 1.0

        for round_index in range(spec.rounds):
            events = {
                node.node_id: chaos.events(round_index, node.node_id)
                for node in scheduler.nodes
            }
            # 1. Chaos kills: evacuate, requeue at the front.
            kills: List[int] = []
            evacuated: List[Tenant] = []
            for node in scheduler.nodes:
                if node.is_up(round_index) and events[node.node_id].kill:
                    kills.append(node.node_id)
                    for tenant_id in node.kill(
                        round_index, spec.chaos.restart_rounds
                    ):
                        placement.pop(tenant_id, None)
                        evacuated.append(tenant_by_id[tenant_id])
                    scheduler.note_node_kill(node.node_id)
            admission.requeue(evacuated)
            result.node_kills += len(kills)
            self.metrics.counter("fleet.node_kills").inc(len(kills))

            # 2. Arrivals and admission.
            shed = admission.offer(arrivals.get(round_index, []))
            for tenant in shed:
                result.shed.append(tenant.tenant_id)
                done[tenant.tenant_id] = True
            confidence_in = fleet_confidence
            mode = scheduler.mode_for(confidence_in)
            if spec.placement == "asm" and mode == "naive":
                # The graceful-degradation event the acceptance drill
                # counts: ASM placement fell back to naive bin-packing.
                self.metrics.counter("fleet.degraded_to_naive").inc()
            self.metrics.counter(f"fleet.rounds_{mode}").inc()
            free = sum(n.free_cores for n in scheduler.candidates(round_index))
            admitted = admission.admit(confidence_in, free)
            admitted_ids = [t.tenant_id for t in admitted]
            deferred: List[Tenant] = []
            for tenant in admitted:
                node_id = scheduler.place(tenant, round_index, mode)
                if node_id is None:
                    deferred.append(tenant)
                else:
                    placement[tenant.tenant_id] = node_id
            admission.requeue(deferred)

            # 3. Run every occupied up node as one campaign cell.
            active = [
                node
                for node in scheduler.nodes
                if node.is_up(round_index) and node.tenants
            ]
            cells = [
                self._cell_for(
                    round_index,
                    node.node_id,
                    [tenant_by_id[tid] for tid in node.tenants],
                    events[node.node_id],
                )
                for node in active
            ]
            cell_results = run_cells(self.campaign, cells, workers=self.workers)

            # 4. Settle: SLA, migration, billing, node health.
            stragglers: List[int] = []
            degraded_nodes: List[int] = []
            failed_nodes: List[int] = []
            violations: List[int] = []
            migrated: List[Tenant] = []
            confidences: List[float] = []
            for node, cell_result in zip(active, cell_results):
                node_id = node.node_id
                if events[node_id].telemetry is not None:
                    degraded_nodes.append(node_id)
                    result.degraded_node_rounds += 1
                if cell_result is None:
                    failed_nodes.append(node_id)
                    result.node_cell_failures += 1
                    scheduler.note_node_round(
                        node_id, ok=False, min_confidence=0.0
                    )
                    if not scheduler.breaker.allows(
                        node_breaker_key(node_id)
                    ):
                        # The node's circuit is open (its cell fails
                        # deterministically): marooning tenants on it
                        # would starve them — evacuate like a kill.
                        for tenant_id in list(node.tenants):
                            scheduler.release(tenant_id, node_id)
                            placement.pop(tenant_id, None)
                            admission.requeue([tenant_by_id[tenant_id]])
                    continue
                node.served_rounds += 1
                straggler = events[node_id].straggler
                if straggler:
                    stragglers.append(node_id)
                    result.straggler_rounds += 1
                bound = worst_case_slowdown_bound(
                    self.config, len(node.tenants) - 1
                )
                node_confidence = 1.0
                node_pressure: List[float] = []
                for core, tenant_id in enumerate(list(node.tenants)):
                    estimate, confidence, actual = self._tenant_outcome(
                        cell_result.records, core
                    )
                    if straggler:
                        confidence = min(confidence, STRAGGLER_CONFIDENCE_CAP)
                    node_confidence = min(node_confidence, confidence)
                    decision = sla.record(
                        tenant_id,
                        estimate=estimate,
                        confidence=confidence,
                        bound=bound,
                        actual=actual,
                        quanta=spec.quanta_per_round,
                    )
                    served[tenant_id] += spec.quanta_per_round
                    node_pressure.append(decision.effective_slowdown)
                    record = BillingRecord(
                        round_index=round_index,
                        tenant_id=tenant_id,
                        node_id=node_id,
                        quanta=spec.quanta_per_round,
                        estimate=(
                            estimate if math.isfinite(estimate) else -1.0
                        ),
                        confidence=confidence,
                        bound=bound,
                        effective_slowdown=decision.effective_slowdown,
                        basis=decision.basis,
                        charge=charge_for(
                            spec.billing,
                            spec.base_rate,
                            spec.quanta_per_round,
                            decision.effective_slowdown,
                        ),
                    )
                    result.billing.append(record)
                    if self._billing_log is not None:
                        self._billing_log.put(record.key, record.to_json())
                    if decision.violated:
                        violations.append(tenant_id)
                        still_needed = served[tenant_id] < tenant_by_id[
                            tenant_id
                        ].demand_quanta
                        if still_needed and scheduler.consider_migration(
                            tenant_id, round_index
                        ):
                            migrated.append(tenant_by_id[tenant_id])
                scheduler.pressure[node_id] = (
                    sum(node_pressure) / len(node_pressure)
                    if node_pressure
                    else 1.0
                )
                scheduler.note_node_round(
                    node_id, ok=True, min_confidence=node_confidence
                )
                confidences.append(node_confidence)

            # 5. Departures, then migrations back to the queue front.
            completed_now: List[int] = []
            for node in scheduler.nodes:
                for tenant_id in list(node.tenants):
                    if served[tenant_id] >= tenant_by_id[
                        tenant_id
                    ].demand_quanta:
                        scheduler.release(tenant_id, node.node_id)
                        placement.pop(tenant_id, None)
                        done[tenant_id] = True
                        completed_now.append(tenant_id)
                        result.completed.append(tenant_id)
            still_migrating = [
                t for t in migrated if not done.get(t.tenant_id)
            ]
            for tenant in still_migrating:
                node_id = placement.pop(tenant.tenant_id, None)
                if node_id is not None:
                    scheduler.release(tenant.tenant_id, node_id)
            admission.requeue(still_migrating)
            self.metrics.counter("fleet.migrations").inc(
                len(still_migrating)
            )
            self.metrics.counter("fleet.sla_violations").inc(
                len(violations)
            )

            if confidences:
                fleet_confidence = sum(confidences) / len(confidences)
            elif not active:
                # An idle fleet has no telemetry to distrust; without
                # this reset a fully-evacuated degraded fleet would
                # never re-open admission (confidence only updates when
                # nodes run).
                fleet_confidence = 1.0

            # 6. Durable round record + metrics snapshot.
            round_record: Dict[str, Any] = {
                "round": round_index,
                "mode": mode,
                "confidence_in": confidence_in,
                "confidence_out": fleet_confidence,
                "placements": sorted(
                    [tid, nid] for tid, nid in placement.items()
                ),
                "kills": kills,
                "stragglers": stragglers,
                "degraded_nodes": degraded_nodes,
                "failed_nodes": failed_nodes,
                "admitted": admitted_ids,
                "shed": [t.tenant_id for t in shed],
                "violations": violations,
                "migrated": [t.tenant_id for t in still_migrating],
                "completed": completed_now,
                "queue": admission.queued_ids,
            }
            result.rounds.append(round_record)
            if self._fleet_log is not None:
                self._fleet_log.put(f"r{round_index:04d}", round_record)
            self._snap_round(
                round_index, fleet_confidence, len(placement), admission
            )
            if all(
                done.get(t.tenant_id) for t in stream
            ) and admission.queue_length == 0:
                break

        result.migrations = scheduler.migrations
        result.migration_denied = scheduler.migration_denied
        result.asm_rounds = scheduler.asm_rounds
        result.naive_rounds = scheduler.naive_rounds
        result.sla_violations = sla.total_violations
        result.oracle_violations = sla.total_oracle_violations
        result.bound_decisions = sum(
            sla.account(t.tenant_id).bound_decisions for t in stream
        )
        result.unserved = sorted(
            t.tenant_id for t in stream if not done.get(t.tenant_id)
        )
        if self.campaign.store is not None:
            self.campaign.store.put_metrics(
                f"__fleet__:{spec.name}", self.metrics.snapshots
            )
        return result

    def _snap_round(
        self,
        round_index: int,
        confidence: float,
        active_tenants: int,
        admission: AdmissionController,
    ) -> None:
        """Record the per-round fleet dashboard sample."""
        self.metrics.gauge("fleet.confidence").set(confidence)
        self.metrics.gauge("fleet.active_tenants").set(active_tenants)
        self.metrics.gauge("fleet.queue").set(admission.queue_length)
        self.metrics.gauge("fleet.shed_total").set(admission.shed)
        self.metrics.snap(round_index)


__all__ = ["FleetResult", "FleetSupervisor", "MODEL_NAME"]
