"""Fault-tolerant slowdown-aware fleet tier (the paper at fleet scale).

The paper's deployment story is datacenter-scale: ASM slowdown
estimates driving fair co-location and pricing across many tenants
(ASM-QoS, Section 7). This package composes every robustness layer the
repo has built into that system: a fleet of simulated multi-core nodes
(each node is one campaign cell running the existing simulator, event
or columnar engine), a deterministic tenant job stream, and a
slowdown-aware scheduler that places, migrates, and bills tenants from
per-node ASM estimates.

Modules:

* :mod:`repro.cloud.spec` — :class:`FleetSpec` / :class:`FleetChaosSpec`,
  the frozen configuration of one fleet run;
* :mod:`repro.cloud.tenants` — the deterministic tenant stream drawn
  from the workload generators;
* :mod:`repro.cloud.chaos` — the fleet-level chaos plane: seeded node
  crash/restart, stragglers, telemetry-degraded nodes;
* :mod:`repro.cloud.node` — node state, the node model builder, and the
  Yun-style worst-case slowdown bound;
* :mod:`repro.cloud.sla` — SLA tracking: effective slowdowns that fall
  back to the worst-case bound when estimate confidence degrades;
* :mod:`repro.cloud.admission` — admission control that sheds load when
  fleet confidence drops;
* :mod:`repro.cloud.scheduler` — ASM-aware placement with graceful
  degradation to naive bin-packing, violation-triggered migration under
  :class:`~repro.durability.retry.RetryPolicy` backoff, and per-node
  circuit breakers;
* :mod:`repro.cloud.billing` — slowdown-fair pricing records;
* :mod:`repro.cloud.fleet` — the crash-resumable fleet supervisor;
* :mod:`repro.cloud.cli` — ``repro cloud run|report``.
"""

from __future__ import annotations

from repro.cloud.spec import FleetChaosSpec, FleetSpec
from repro.cloud.fleet import FleetResult, FleetSupervisor

__all__ = [
    "FleetChaosSpec",
    "FleetResult",
    "FleetSpec",
    "FleetSupervisor",
]
