"""Slowdown-aware placement, migration backoff, per-node breakers.

Placement runs in one of two modes every round:

* **asm** — interference-aware: place each tenant on the candidate node
  with the lowest *pressure* (the mean effective slowdown its tenants
  saw last round), breaking ties towards emptier and lower-numbered
  nodes. This is the paper's Section 7 story — ASM estimates steering
  co-location.
* **naive** — first-fit bin-packing by node id, blind to interference.
  This is both the experimental baseline and the graceful-degradation
  target: when fleet estimate confidence falls below the policy floor,
  ASM numbers are noise and the scheduler *deliberately* falls back to
  naive placement (counted, surfaced in metrics) rather than chase
  corrupted estimates.

SLA violations trigger migration, but migration is supervised exactly
like cell retries: a per-tenant attempt budget and deterministic
exponential backoff (:class:`~repro.durability.retry.RetryPolicy`, with
the delay read in *rounds*), so a tenant whose SLA cannot be met
anywhere does not thrash the fleet. A per-node
:class:`~repro.durability.retry.CircuitBreaker` stops placements onto
nodes whose cells repeatedly fail or whose telemetry stays degraded —
transient faults (chaos kills surface as ``WorkerCrash``) never trip
it, matching the campaign supervisor's retry discipline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.cloud.node import NodeState
from repro.cloud.spec import FleetSpec
from repro.cloud.tenants import Tenant
from repro.durability.retry import CircuitBreaker, RetryPolicy


def node_breaker_key(node_id: int) -> str:
    """The circuit-breaker fingerprint for one node."""
    return f"node-{node_id:02d}"


class FleetScheduler:
    """Mutable placement state for one fleet run."""

    def __init__(self, spec: FleetSpec) -> None:
        self.spec = spec
        self.nodes = [
            NodeState(node_id=i, cores=spec.cores_per_node)
            for i in range(spec.num_nodes)
        ]
        self.breaker = CircuitBreaker()
        self.migration_policy = RetryPolicy(
            max_attempts=max(2, spec.migration_max_attempts + 1),
            backoff_s=spec.migration_backoff_rounds,
            backoff_factor=2.0,
            jitter=0.5,
            seed=spec.seed,
        )
        #: Mean effective slowdown each node's tenants saw last round.
        self.pressure: Dict[int, float] = {}
        self._migration_attempts: Dict[int, int] = {}
        self._cooldown_until: Dict[int, int] = {}
        self.migrations = 0
        self.migration_denied = 0
        self.asm_rounds = 0
        self.naive_rounds = 0

    # -- mode ----------------------------------------------------------
    def mode_for(self, fleet_confidence: float) -> str:
        """This round's placement mode, counted.

        A ``naive``-policy fleet is always naive; an ``asm`` fleet
        degrades to naive exactly when ``fleet_confidence`` (last
        round's measurement) is below the spec's confidence floor.
        """
        if (
            self.spec.placement == "asm"
            and fleet_confidence >= self.spec.confidence_floor
        ):
            self.asm_rounds += 1
            return "asm"
        self.naive_rounds += 1
        return "naive"

    # -- placement -----------------------------------------------------
    def candidates(self, round_index: int) -> List[NodeState]:
        """Nodes placements may target this round, in id order."""
        return [
            node
            for node in self.nodes
            if node.is_up(round_index)
            and node.free_cores > 0
            and self.breaker.allows(node_breaker_key(node.node_id))
        ]

    def place(
        self, tenant: Tenant, round_index: int, mode: str
    ) -> Optional[int]:
        """Assign ``tenant`` to a node (mutating it); ``None`` if full."""
        candidates = self.candidates(round_index)
        if not candidates:
            return None
        if mode == "asm":
            chosen = min(
                candidates,
                key=lambda n: (
                    self.pressure.get(n.node_id, 1.0),
                    len(n.tenants),
                    n.node_id,
                ),
            )
        else:
            chosen = candidates[0]  # first fit: lowest node id with room
        chosen.tenants.append(tenant.tenant_id)
        return chosen.node_id

    def release(self, tenant_id: int, node_id: int) -> None:
        """Take ``tenant_id`` off ``node_id`` (departure or migration)."""
        self.nodes[node_id].tenants.remove(tenant_id)

    # -- node health ---------------------------------------------------
    def note_node_round(
        self,
        node_id: int,
        *,
        ok: bool,
        min_confidence: float,
    ) -> None:
        """Feed one node-round outcome into the per-node breaker."""
        key = node_breaker_key(node_id)
        if not ok:
            self.breaker.record_failure(
                key, "NodeCellFailure", f"node {node_id} cell failed"
            )
        elif min_confidence < self.spec.confidence_floor:
            self.breaker.record_failure(
                key,
                "TelemetryDegraded",
                f"node {node_id} confidence below floor",
            )
        else:
            self.breaker.record_success(key)

    def note_node_kill(self, node_id: int) -> None:
        """A chaos kill: transient by definition (never trips)."""
        self.breaker.record_failure(
            node_breaker_key(node_id), "WorkerCrash", "chaos node kill"
        )

    # -- migration -----------------------------------------------------
    def consider_migration(self, tenant_id: int, round_index: int) -> bool:
        """Whether an SLA violation may migrate ``tenant_id`` now.

        Approval burns one migration attempt and starts a deterministic
        exponential-backoff cooldown (delay measured in rounds).
        """
        attempts = self._migration_attempts.get(tenant_id, 0)
        if attempts >= self.spec.migration_max_attempts:
            self.migration_denied += 1
            return False
        if round_index < self._cooldown_until.get(tenant_id, 0):
            self.migration_denied += 1
            return False
        attempts += 1
        self._migration_attempts[tenant_id] = attempts
        delay_rounds = max(
            1,
            math.ceil(
                self.migration_policy.delay_s(
                    attempts, f"tenant-{tenant_id:03d}"
                )
            ),
        )
        self._cooldown_until[tenant_id] = round_index + 1 + delay_rounds
        self.migrations += 1
        return True

    def migration_attempts(self, tenant_id: int) -> int:
        """Attempts spent migrating ``tenant_id`` so far."""
        return self._migration_attempts.get(tenant_id, 0)


__all__ = ["FleetScheduler", "node_breaker_key"]
