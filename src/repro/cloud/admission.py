"""Admission control: shed load when the fleet cannot be trusted.

New tenants queue FIFO. While fleet confidence is at or above the
policy floor, the controller admits as many queued tenants as the fleet
has free cores. When confidence drops below the floor the fleet is
flying on worst-case bounds — admitting more load would only convert
soft degradation into SLA violations — so admission pauses, the queue
absorbs arrivals up to ``max_queue``, and anything beyond that is shed
(rejected permanently, and counted: shedding is a robustness outcome,
not an error).
"""

from __future__ import annotations

from typing import List

from repro.cloud.tenants import Tenant


class AdmissionController:
    """FIFO queue with confidence-gated admission and overflow shedding."""

    def __init__(self, max_queue: int, floor: float) -> None:
        self.max_queue = max_queue
        self.floor = floor
        self._queue: List[Tenant] = []
        self.admitted = 0
        self.shed = 0

    @property
    def queue_length(self) -> int:
        """Tenants currently waiting."""
        return len(self._queue)

    @property
    def queued_ids(self) -> List[int]:
        """Waiting tenant ids in queue order (for round records)."""
        return [t.tenant_id for t in self._queue]

    def offer(self, arrivals: List[Tenant]) -> List[Tenant]:
        """Enqueue this round's arrivals; returns the tenants shed.

        Evacuated tenants (already admitted once) should be re-queued
        with :meth:`requeue` instead — they are never shed.
        """
        shed: List[Tenant] = []
        for tenant in arrivals:
            if len(self._queue) >= self.max_queue:
                shed.append(tenant)
                self.shed += 1
            else:
                self._queue.append(tenant)
        return shed

    def requeue(self, tenants: List[Tenant]) -> None:
        """Put evacuated/migrating tenants at the *front* of the queue
        (they already waited their turn); never sheds."""
        self._queue[:0] = tenants

    def admit(self, fleet_confidence: float, free_cores: int) -> List[Tenant]:
        """Admit up to ``free_cores`` tenants, FIFO — unless degraded.

        Below the confidence floor nothing is admitted: the queue rides
        out the degradation (and :meth:`offer` sheds its overflow).
        """
        if fleet_confidence < self.floor or free_cores <= 0:
            return []
        admitted = self._queue[:free_cores]
        del self._queue[: len(admitted)]
        self.admitted += len(admitted)
        return admitted


__all__ = ["AdmissionController"]
