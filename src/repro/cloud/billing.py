"""Slowdown-fair billing (paper Section 7.3 at fleet scale).

The paper's fair-pricing scheme bills a tenant for the machine time it
*effectively* received: a tenant slowed 2x by co-runners got half a
machine, and pays accordingly. ``charge = base_rate * quanta /
effective_slowdown`` implements that; ``flat`` billing (the baseline
the experiments compare against) charges for wall occupancy regardless
of interference, which overcharges exactly the tenants that hogs hurt.

Billing records are persisted per (round, tenant) through the keyed
checksummed store, so a crash-resumed fleet replays them idempotently
and ``repro campaign verify`` checks every record's checksum.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class BillingRecord:
    """One tenant-round invoice line."""

    round_index: int
    tenant_id: int
    node_id: int
    quanta: int
    estimate: float
    confidence: float
    bound: float
    effective_slowdown: float
    basis: str
    charge: float

    @property
    def key(self) -> str:
        """The keyed-store key (stable per tenant-round)."""
        return billing_key(self.round_index, self.tenant_id)

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)


def billing_key(round_index: int, tenant_id: int) -> str:
    """Store key for one tenant-round invoice line."""
    return f"r{round_index:04d}/t{tenant_id:04d}"


def charge_for(
    mode: str, base_rate: float, quanta: int, effective_slowdown: float
) -> float:
    """The invoice amount for one tenant-round.

    ``fair`` divides by the effective slowdown (interference discount);
    ``flat`` bills occupancy as-is.
    """
    if quanta <= 0:
        return 0.0
    if mode == "fair":
        return base_rate * quanta / max(1.0, effective_slowdown)
    return base_rate * quanta


__all__ = ["BillingRecord", "billing_key", "charge_for"]
