"""The Application Slowdown Model (Sections 3 and 4 of the paper).

Per quantum (Q cycles), for each application:

* ``CAR_shared`` is measured directly: shared-cache accesses / Q.
* ``CAR_alone`` is estimated from the epochs (E cycles) assigned to the
  application, during which its requests had highest memory priority:

  ::

      CAR_alone = (epoch-hits + epoch-misses) /
                  (epoch-count*E - epoch-excess-cycles
                                 - epoch-ATS-misses * avg-queueing-delay)

      epoch-excess-cycles = contention-misses * (avg-miss-time - avg-hit-time)
      contention-misses   = epoch-ATS-hits - epoch-hits

* slowdown = CAR_alone / CAR_shared.

The auxiliary tag store is optionally set-sampled (Section 4.4), in which
case ``epoch-ATS-hits`` is the sampled hit *fraction* scaled by the epoch
access count. Memory queueing residue is corrected per Section 4.3 using
the controller's queueing-cycle counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.auxtag import AuxiliaryTagStore
from repro.harness.system import System
from repro.models.base import OutstandingTracker, SlowdownModel


@dataclass
class AsmQuantumStats:
    """Snapshot of one application's ASM-visible behaviour for a quantum.

    Exposed so the resource-management policies built on ASM (ASM-Cache,
    ASM-Mem, ASM-QoS) can re-derive slowdowns for hypothetical cache
    allocations (Section 7.1's ``CAR_n``).
    """

    slowdown: float = 1.0
    car_alone: float = 0.0
    car_shared: float = 0.0
    quantum_hits: int = 0
    quantum_misses: int = 0
    avg_hit_time: float = 0.0
    avg_miss_time: float = 0.0
    alone_avg_miss_time: float = 0.0
    utility_curve: List[float] = field(default_factory=list)
    quantum_cycles: int = 0

    @property
    def quantum_accesses(self) -> int:
        return self.quantum_hits + self.quantum_misses


class AsmModel(SlowdownModel):
    """Online ASM estimator for every core of a system."""

    name = "asm"
    uses_epochs = True

    def __init__(
        self,
        sampled_sets: Optional[int] = None,
        queueing_correction: bool = True,
    ) -> None:
        """``sampled_sets=None`` keeps a full (unsampled) auxiliary tag
        store; the paper's practical configuration is 64 sampled sets.
        ``queueing_correction=False`` disables the Section 4.3 residual
        memory-queueing correction (ablation)."""
        super().__init__()
        self.sampled_sets = sampled_sets
        self.queueing_correction = queueing_correction
        self.ats: List[AuxiliaryTagStore] = []
        self.last_quantum: List[AsmQuantumStats] = []

    # ------------------------------------------------------------------
    def attach(self, system: System) -> None:
        super().attach(system)
        n = system.config.num_cores
        self.ats = [
            AuxiliaryTagStore(system.config.llc, self.sampled_sets)
            for _ in range(n)
        ]
        # Per-quantum counters.
        self._accesses = [0] * n
        self._hits = [0] * n
        self._misses = [0] * n
        self._epoch_count = [0] * n
        self._epoch_hits = [0] * n
        self._epoch_misses = [0] * n
        self._epoch_sampled_ats_hits = [0] * n
        self._epoch_sampled_shared_hits = [0] * n
        self._epoch_sampled_ats_accesses = [0] * n
        self._queueing_base = list(system.controller.queueing_cycles)
        # Core currently being measured (its epoch is past warm-up).
        self._measuring = -1
        self._epoch_hit_time = [OutstandingTracker(gate_open=False) for _ in range(n)]
        self._epoch_miss_time = [OutstandingTracker(gate_open=False) for _ in range(n)]
        self._quantum_hit_time = [OutstandingTracker() for _ in range(n)]
        self._quantum_miss_time = [OutstandingTracker() for _ in range(n)]
        self.last_quantum = [AsmQuantumStats() for _ in range(n)]
        system.hierarchy.access_listeners.append(self._on_access)
        system.hierarchy.service_listeners.append(self._on_service)
        system.epoch_listeners.append(self._on_epoch)
        system.measure_listeners.append(self._on_measure)

    # ------------------------------------------------------------------
    def _on_access(
        self, core: int, line_addr: int, is_write: bool, hit: bool, now: int
    ) -> None:
        self._accesses[core] += 1
        if hit:
            self._hits[core] += 1
        else:
            self._misses[core] += 1
        outcome = self.ats[core].access(line_addr)
        if self._measuring == core:
            if hit:
                self._epoch_hits[core] += 1
            else:
                self._epoch_misses[core] += 1
            if outcome.sampled:
                self._epoch_sampled_ats_accesses[core] += 1
                if outcome.hit:
                    self._epoch_sampled_ats_hits[core] += 1
                if hit:
                    self._epoch_sampled_shared_hits[core] += 1

    def _on_service(self, core: int, is_hit: bool, is_start: bool, now: int) -> None:
        epoch = self._epoch_hit_time[core] if is_hit else self._epoch_miss_time[core]
        quantum = (
            self._quantum_hit_time[core] if is_hit else self._quantum_miss_time[core]
        )
        if is_start:
            epoch.start(now)
            quantum.start(now)
        else:
            epoch.end(now)
            quantum.end(now)

    def _on_epoch(self, owner: int) -> None:
        now = self.now
        self._epoch_count[owner] += 1
        self._measuring = -1
        for core in range(self.num_cores):
            self._epoch_hit_time[core].set_gate(False, now)
            self._epoch_miss_time[core].set_gate(False, now)

    def _on_measure(self, owner: int) -> None:
        now = self.now
        self._measuring = owner
        self._epoch_hit_time[owner].set_gate(True, now)
        self._epoch_miss_time[owner].set_gate(True, now)

    # ------------------------------------------------------------------
    def estimate_slowdowns(self) -> List[float]:
        assert self.system is not None
        now = self.now
        config = self.system.config
        quantum = config.quantum_cycles
        # Only the post-warm-up portion of each epoch is measured.
        epoch_len = config.epoch_cycles - config.epoch_warmup_cycles
        controller = self.system.controller
        estimates: List[float] = []
        llc_latency = config.llc.latency

        for core in range(self.num_cores):
            stats = AsmQuantumStats()
            stats.quantum_cycles = quantum
            stats.quantum_hits = self._hits[core]
            stats.quantum_misses = self._misses[core]
            q_hits = self._quantum_hit_time[core].read(now)
            q_misses = self._quantum_miss_time[core].read(now)
            stats.avg_hit_time = (
                q_hits / self._hits[core] if self._hits[core] else float(llc_latency)
            )
            stats.avg_miss_time = (
                q_misses / self._misses[core] if self._misses[core] else 0.0
            )
            stats.utility_curve = self.ats[core].utility_curve()
            stats.car_shared = self._accesses[core] / quantum

            epoch_hits = self._epoch_hits[core]
            epoch_misses = self._epoch_misses[core]
            epoch_accesses = epoch_hits + epoch_misses
            prioritized = self._epoch_count[core] * epoch_len

            if prioritized <= 0 or epoch_accesses == 0 or stats.car_shared == 0:
                stats.slowdown = 1.0
                estimates.append(stats.slowdown)
                self.last_quantum[core] = stats
                continue

            # Epoch-scoped service times (alone-like, thanks to priority).
            hit_time = self._epoch_hit_time[core].read(now)
            miss_time = self._epoch_miss_time[core].read(now)
            avg_hit = hit_time / epoch_hits if epoch_hits else float(llc_latency)
            avg_miss = miss_time / epoch_misses if epoch_misses else 0.0
            stats.alone_avg_miss_time = avg_miss

            sampled_acc = self._epoch_sampled_ats_accesses[core]
            if sampled_acc:
                hit_fraction = self._epoch_sampled_ats_hits[core] / sampled_acc
                # Contention misses (Section 4.4): estimate the ATS-vs-
                # shared hit *difference* on the sampled sets and scale it.
                # Differencing on the same sampled subset cancels the
                # correlated sampling noise that differencing a sampled
                # count against an exact count would amplify.
                contention_fraction = max(
                    0.0,
                    (
                        self._epoch_sampled_ats_hits[core]
                        - self._epoch_sampled_shared_hits[core]
                    )
                    / sampled_acc,
                )
            else:
                hit_fraction = 0.0
                contention_fraction = 0.0
            ats_hits = hit_fraction * epoch_accesses
            ats_misses = epoch_accesses - ats_hits

            contention_misses = contention_fraction * epoch_accesses
            excess = contention_misses * max(0.0, avg_miss - avg_hit)

            if self.queueing_correction:
                queueing = (
                    controller.queueing_cycles[core] - self._queueing_base[core]
                )
            else:
                queueing = 0
            avg_queueing_delay = queueing / epoch_misses if epoch_misses else 0.0

            denom = prioritized - excess - ats_misses * avg_queueing_delay
            if denom <= 0:
                denom = max(1.0, 0.05 * prioritized)
            stats.car_alone = epoch_accesses / denom
            stats.slowdown = self.clamp_slowdown(stats.car_alone / stats.car_shared)
            estimates.append(stats.slowdown)
            self.last_quantum[core] = stats
        return estimates

    def reset_quantum(self) -> None:
        assert self.system is not None
        now = self.now
        n = self.num_cores
        self._accesses = [0] * n
        self._hits = [0] * n
        self._misses = [0] * n
        self._epoch_count = [0] * n
        self._epoch_hits = [0] * n
        self._epoch_misses = [0] * n
        self._epoch_sampled_ats_hits = [0] * n
        self._epoch_sampled_shared_hits = [0] * n
        self._epoch_sampled_ats_accesses = [0] * n
        self._queueing_base = list(self.system.controller.queueing_cycles)
        for core in range(n):
            self._epoch_hit_time[core].reset(now)
            self._epoch_miss_time[core].reset(now)
            self._quantum_hit_time[core].reset(now)
            self._quantum_miss_time[core].reset(now)
            self.ats[core].reset_stats()

    # ------------------------------------------------------------------
    def car_for_ways(self, core: int, ways: int) -> float:
        """Section 7.1's ``CAR_n``: estimated cache access rate of ``core``
        had it been allocated ``ways`` LLC ways during the last quantum."""
        stats = self.last_quantum[core]
        accesses = stats.quantum_accesses
        if accesses == 0 or not stats.utility_curve:
            return 0.0
        hits_n = stats.utility_curve[min(ways, len(stats.utility_curve) - 1)]
        delta_hits = hits_n - stats.quantum_hits
        service_gap = max(0.0, stats.avg_miss_time - stats.avg_hit_time)
        cycles_n = stats.quantum_cycles - delta_hits * service_gap
        if cycles_n <= 0:
            cycles_n = max(1.0, 0.05 * stats.quantum_cycles)
        return accesses / cycles_n

    def slowdown_for_ways(self, core: int, ways: int) -> float:
        """Estimated slowdown of ``core`` with an allocation of ``ways``."""
        car_n = self.car_for_ways(core, ways)
        if car_n <= 0:
            return self.clamp_slowdown(float("inf"))
        return self.clamp_slowdown(self.last_quantum[core].car_alone / car_n)
