"""The Application Slowdown Model (Sections 3 and 4 of the paper).

Per quantum (Q cycles), for each application:

* ``CAR_shared`` is measured directly: shared-cache accesses / Q.
* ``CAR_alone`` is estimated from the epochs (E cycles) assigned to the
  application, during which its requests had highest memory priority:

  ::

      CAR_alone = (epoch-hits + epoch-misses) /
                  (epoch-count*E - epoch-excess-cycles
                                 - epoch-ATS-misses * avg-queueing-delay)

      epoch-excess-cycles = contention-misses * (avg-miss-time - avg-hit-time)
      contention-misses   = epoch-ATS-hits - epoch-hits

* slowdown = CAR_alone / CAR_shared.

The auxiliary tag store is optionally set-sampled (Section 4.4), in which
case ``epoch-ATS-hits`` is the sampled hit *fraction* scaled by the epoch
access count. Memory queueing residue is corrected per Section 4.3 using
the controller's queueing-cycle counters.

Every counter feeding the estimate is read through the model's
:class:`~repro.telemetry.counters.CounterBank` and validated against
physical invariants (hits <= accesses, non-negative queueing deltas, a
positive CAR_alone denominator). Violations possible in a healthy run are
clamped exactly as before but flagged with reduced confidence; violations
only counter faults can produce fall back to the last good quantum's
estimate (see :class:`~repro.models.base.EstimateGuard`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.cache.auxtag import AuxiliaryTagStore
from repro.harness.system import System
from repro.models.base import OutstandingTracker, SlowdownModel

if TYPE_CHECKING:
    from repro.vector.batch import RequestBatch


@dataclass
class AsmQuantumStats:
    """Snapshot of one application's ASM-visible behaviour for a quantum.

    Exposed so the resource-management policies built on ASM (ASM-Cache,
    ASM-Mem, ASM-QoS) can re-derive slowdowns for hypothetical cache
    allocations (Section 7.1's ``CAR_n``). ``confidence``/
    ``degraded_reason`` report the telemetry health of the quantum:
    policies skip reallocation decisions when confidence drops below
    :data:`~repro.models.base.POLICY_CONFIDENCE_FLOOR`.
    """

    slowdown: float = 1.0
    car_alone: float = 0.0
    car_shared: float = 0.0
    quantum_hits: int = 0
    quantum_misses: int = 0
    avg_hit_time: float = 0.0
    avg_miss_time: float = 0.0
    alone_avg_miss_time: float = 0.0
    utility_curve: List[float] = field(default_factory=list)
    quantum_cycles: int = 0
    confidence: float = 1.0
    degraded_reason: Optional[str] = None

    @property
    def quantum_accesses(self) -> int:
        """Total LLC accesses this quantum (conservation witness)."""
        return self.quantum_hits + self.quantum_misses


class AsmModel(SlowdownModel):
    """Online ASM estimator for every core of a system."""

    name = "asm"
    uses_epochs = True

    def __init__(
        self,
        sampled_sets: Optional[int] = None,
        queueing_correction: bool = True,
    ) -> None:
        """``sampled_sets=None`` keeps a full (unsampled) auxiliary tag
        store; the paper's practical configuration is 64 sampled sets.
        ``queueing_correction=False`` disables the Section 4.3 residual
        memory-queueing correction (ablation)."""
        super().__init__()
        self.sampled_sets = sampled_sets
        self.queueing_correction = queueing_correction
        self.ats: List[AuxiliaryTagStore] = []
        self.last_quantum: List[AsmQuantumStats] = []

    # ------------------------------------------------------------------
    def attach(self, system: System) -> None:
        """Hook the ATS and the ASM counters into ``system``'s streams."""
        super().attach(system)
        n = system.config.num_cores
        bank = self.bank
        assert bank is not None
        self.ats = [
            AuxiliaryTagStore(system.config.llc, self.sampled_sets)
            for _ in range(n)
        ]
        # Per-quantum counters, held by the model's telemetry bank. The
        # write path increments the raw values; the estimate reads them
        # back through the bank's guarded accessors.
        self._accesses = bank.vec("accesses")
        self._hits = bank.vec("hits")
        self._misses = bank.vec("misses")
        self._epoch_count = bank.vec("epoch_count")
        self._epoch_hits = bank.vec("epoch_hits")
        self._epoch_misses = bank.vec("epoch_misses")
        self._epoch_sampled_ats_hits = bank.vec("epoch_sampled_ats_hits", kind="ats")
        self._epoch_sampled_shared_hits = bank.vec(
            "epoch_sampled_shared_hits", kind="ats"
        )
        self._epoch_sampled_ats_accesses = bank.vec(
            "epoch_sampled_ats_accesses", kind="ats"
        )
        # Core currently being measured (its epoch is past warm-up).
        self._measuring = -1
        # (true owner, telemetry-attributed owner) of the current epoch.
        self._epoch_owners: Tuple[int, int] = (-1, -1)
        self._epoch_hit_time = [OutstandingTracker(gate_open=False) for _ in range(n)]
        self._epoch_miss_time = [OutstandingTracker(gate_open=False) for _ in range(n)]
        self._quantum_hit_time = [OutstandingTracker() for _ in range(n)]
        self._quantum_miss_time = [OutstandingTracker() for _ in range(n)]
        # Simulator-owned counters are sampled through the bank too.
        controller = system.controller
        self._queueing = bank.external(
            "queueing_cycles", lambda core: controller.queueing_cycles[core]
        )
        self._queueing.rebase()
        self._epoch_hit_sample = bank.external(
            "epoch_hit_time", lambda core: self._epoch_hit_time[core].read(self.now)
        )
        self._epoch_miss_sample = bank.external(
            "epoch_miss_time", lambda core: self._epoch_miss_time[core].read(self.now)
        )
        self._quantum_hit_sample = bank.external(
            "quantum_hit_time",
            lambda core: self._quantum_hit_time[core].read(self.now),
        )
        self._quantum_miss_sample = bank.external(
            "quantum_miss_time",
            lambda core: self._quantum_miss_time[core].read(self.now),
        )
        self.last_quantum = [AsmQuantumStats() for _ in range(n)]
        # Columnar backend: consume staged request batches from the
        # system's plane instead of one callback per access. The plane
        # flushes before every epoch/measure/quantum listener fires, so
        # ``_measuring`` is constant over each flushed span and the
        # batched counter updates are bit-identical to the scalar path.
        if system.batch_plane is not None:
            system.batch_plane.register(self._on_batch)
        else:
            system.hierarchy.access_listeners.append(self._on_access)
        system.hierarchy.service_listeners.append(self._on_service)
        system.epoch_listeners.append(self._on_epoch)
        system.measure_listeners.append(self._on_measure)

    # ------------------------------------------------------------------
    def _on_access(
        self, core: int, line_addr: int, is_write: bool, hit: bool, now: int
    ) -> None:
        self._accesses.add(core)
        if hit:
            self._hits.add(core)
        else:
            self._misses.add(core)
        outcome = self.ats[core].access(line_addr)
        if self._measuring == core:
            if hit:
                self._epoch_hits.add(core)
            else:
                self._epoch_misses.add(core)
            if outcome.sampled:
                self._epoch_sampled_ats_accesses.add(core)
                if outcome.hit:
                    self._epoch_sampled_ats_hits.add(core)
                if hit:
                    self._epoch_sampled_shared_hits.add(core)

    def _on_batch(self, batch: "RequestBatch") -> None:
        """Columnar equivalent of :meth:`_on_access` for one staged span.

        Counter increments commute (telemetry faults apply at read time,
        and saturation/wraparound commute with accumulation), so adding
        per-core counts once per span matches per-access increments bit
        for bit. The ATS consumes each core's addresses in service order
        via :meth:`~repro.cache.auxtag.AuxiliaryTagStore.access_batch`.
        """
        from repro.vector import columns as col

        measuring = self._measuring
        for core, idx in batch.groups_by_core():
            addrs = col.take(batch.addrs, idx)
            hits_mask = col.take(batch.hits, idx)
            n = len(idx)
            n_hits = col.count_true(hits_mask)
            self._accesses.add(core, n)
            self._hits.add(core, n_hits)
            self._misses.add(core, n - n_hits)
            sampled, ats_hit = self.ats[core].access_batch(col.tolist(addrs))
            if measuring == core:
                self._epoch_hits.add(core, n_hits)
                self._epoch_misses.add(core, n - n_hits)
                sampled_mask = col.mask_column(sampled)
                ats_hit_mask = col.mask_column(ats_hit)
                self._epoch_sampled_ats_accesses.add(
                    core, col.count_true(sampled_mask)
                )
                self._epoch_sampled_ats_hits.add(
                    core, col.count_true(col.logical_and(sampled_mask, ats_hit_mask))
                )
                self._epoch_sampled_shared_hits.add(
                    core, col.count_true(col.logical_and(sampled_mask, hits_mask))
                )

    def _on_service(self, core: int, is_hit: bool, is_start: bool, now: int) -> None:
        epoch = self._epoch_hit_time[core] if is_hit else self._epoch_miss_time[core]
        quantum = (
            self._quantum_hit_time[core] if is_hit else self._quantum_miss_time[core]
        )
        if is_start:
            epoch.start(now)
            quantum.start(now)
        else:
            epoch.end(now)
            quantum.end(now)

    def _on_epoch(self, owner: int) -> None:
        now = self.now
        assert self.bank is not None
        # An epoch-ownership glitch credits the epoch to the wrong core in
        # the model's counters; the controller still prioritises ``owner``.
        attributed = self.bank.attribute_epoch(owner)
        self._epoch_owners = (owner, attributed)
        self._epoch_count.add(attributed)
        self._measuring = -1
        for core in range(self.num_cores):
            self._epoch_hit_time[core].set_gate(False, now)
            self._epoch_miss_time[core].set_gate(False, now)

    def _on_measure(self, owner: int) -> None:
        now = self.now
        true_owner, attributed = self._epoch_owners
        if owner == true_owner:
            owner = attributed
        self._measuring = owner
        self._epoch_hit_time[owner].set_gate(True, now)
        self._epoch_miss_time[owner].set_gate(True, now)

    # ------------------------------------------------------------------
    def estimate_slowdowns(self) -> List[float]:
        """Per-core ASM slowdown (CAR-alone over CAR-shared) estimates."""
        assert self.system is not None
        assert self.bank is not None and self.guard is not None
        bank = self.bank
        guard = self.guard
        config = self.system.config
        quantum = config.quantum_cycles
        # Only the post-warm-up portion of each epoch is measured.
        epoch_len = config.epoch_cycles - config.epoch_warmup_cycles
        epochs_on = self.system.epochs_enabled
        estimates: List[float] = []
        llc_latency = config.llc.latency

        for core in range(self.num_cores):
            stats = AsmQuantumStats()
            stats.quantum_cycles = quantum
            # One guarded read per counter per quantum; all reads happen
            # up front so every telemetry sample is taken (and every read
            # fault fires) regardless of which estimate path runs.
            accesses = self._accesses.read(core)
            hits = self._hits.read(core)
            misses = self._misses.read(core)
            q_hit_time = self._quantum_hit_sample.read(core)
            q_miss_time = self._quantum_miss_sample.read(core)
            epoch_count = self._epoch_count.read(core)
            epoch_hits = self._epoch_hits.read(core)
            epoch_misses = self._epoch_misses.read(core)
            hit_time = self._epoch_hit_sample.read(core)
            miss_time = self._epoch_miss_sample.read(core)
            sampled_acc = self._epoch_sampled_ats_accesses.read(core)
            sampled_ats_hits = self._epoch_sampled_ats_hits.read(core)
            sampled_shared_hits = self._epoch_sampled_shared_hits.read(core)
            if self.queueing_correction:
                queueing = self._queueing.delta(core)
            else:
                queueing = 0

            stats.quantum_hits = hits
            stats.quantum_misses = misses
            stats.avg_hit_time = q_hit_time / hits if hits else float(llc_latency)
            stats.avg_miss_time = q_miss_time / misses if misses else 0.0
            stats.utility_curve = self.ats[core].utility_curve()
            stats.car_shared = accesses / quantum

            epoch_accesses = epoch_hits + epoch_misses
            prioritized = epoch_count * epoch_len

            soft: List[str] = []
            if prioritized <= 0 or epoch_accesses == 0 or stats.car_shared == 0:
                if epochs_on and accesses > 0:
                    soft.append("no-epoch-signal")
                estimate = 1.0
            else:
                # Epoch-scoped service times (alone-like, thanks to priority).
                avg_hit = hit_time / epoch_hits if epoch_hits else float(llc_latency)
                avg_miss = miss_time / epoch_misses if epoch_misses else 0.0
                stats.alone_avg_miss_time = avg_miss

                if sampled_acc:
                    hit_fraction = sampled_ats_hits / sampled_acc
                    # Contention misses (Section 4.4): estimate the ATS-vs-
                    # shared hit *difference* on the sampled sets and scale it.
                    # Differencing on the same sampled subset cancels the
                    # correlated sampling noise that differencing a sampled
                    # count against an exact count would amplify.
                    contention_fraction = max(
                        0.0,
                        (sampled_ats_hits - sampled_shared_hits) / sampled_acc,
                    )
                else:
                    hit_fraction = 0.0
                    contention_fraction = 0.0
                ats_hits = hit_fraction * epoch_accesses
                ats_misses = epoch_accesses - ats_hits

                contention_misses = contention_fraction * epoch_accesses
                excess = contention_misses * max(0.0, avg_miss - avg_hit)

                avg_queueing_delay = queueing / epoch_misses if epoch_misses else 0.0

                denom = prioritized - excess - ats_misses * avg_queueing_delay
                if denom <= 0:
                    denom = max(1.0, 0.05 * prioritized)
                    soft.append("degenerate-denominator")
                stats.car_alone = epoch_accesses / denom
                estimate = self.clamp_slowdown(stats.car_alone / stats.car_shared)

            # Hard violations: impossible without counter faults.
            hard: List[str] = []
            if hits + misses != accesses:
                hard.append("counter-conservation")
            if epoch_hits > hits or epoch_misses > misses:
                hard.append("epoch-exceeds-quantum")
            if (
                sampled_ats_hits > sampled_acc
                or sampled_shared_hits > sampled_acc
            ):
                hard.append("ats-sample-implausible")
            if queueing < 0:
                hard.append("negative-queueing")
            hard.extend(bank.collect_flags(core))

            stats.slowdown = guard.resolve(core, estimate, soft, hard)
            stats.confidence = guard.confidence[core]
            stats.degraded_reason = guard.reasons[core]
            estimates.append(stats.slowdown)
            self.last_quantum[core] = stats
        return estimates

    def reset_quantum(self) -> None:
        """Reset per-quantum counters; the ATS keeps its learned tags."""
        assert self.system is not None and self.bank is not None
        now = self.now
        n = self.num_cores
        self.bank.reset()
        self._queueing.rebase()
        for core in range(n):
            self._epoch_hit_time[core].reset(now)
            self._epoch_miss_time[core].reset(now)
            self._quantum_hit_time[core].reset(now)
            self._quantum_miss_time[core].reset(now)
            self.ats[core].reset_stats()

    def trace_stats(self) -> Optional[List[Dict[str, float]]]:
        """Per-core :class:`AsmQuantumStats` projection for the MODEL
        trace event — exactly the numbers the model itself used, so the
        trace inspector's CAR columns match ``last_quantum`` by
        construction."""
        return [
            {
                "car_alone": s.car_alone,
                "car_shared": s.car_shared,
                "quantum_hits": float(s.quantum_hits),
                "quantum_misses": float(s.quantum_misses),
                "avg_hit_time": s.avg_hit_time,
                "avg_miss_time": s.avg_miss_time,
            }
            for s in self.last_quantum
        ]

    # ------------------------------------------------------------------
    def car_for_ways(self, core: int, ways: int) -> float:
        """Section 7.1's ``CAR_n``: estimated cache access rate of ``core``
        had it been allocated ``ways`` LLC ways during the last quantum."""
        stats = self.last_quantum[core]
        accesses = stats.quantum_accesses
        if accesses == 0 or not stats.utility_curve:
            return 0.0
        hits_n = stats.utility_curve[min(ways, len(stats.utility_curve) - 1)]
        delta_hits = hits_n - stats.quantum_hits
        service_gap = max(0.0, stats.avg_miss_time - stats.avg_hit_time)
        cycles_n = stats.quantum_cycles - delta_hits * service_gap
        if cycles_n <= 0:
            cycles_n = max(1.0, 0.05 * stats.quantum_cycles)
        return accesses / cycles_n

    def slowdown_for_ways(self, core: int, ways: int) -> float:
        """Estimated slowdown of ``core`` with an allocation of ``ways``."""
        car_n = self.car_for_ways(core, ways)
        if car_n <= 0:
            return self.clamp_slowdown(float("inf"))
        return self.clamp_slowdown(self.last_quantum[core].car_alone / car_n)
