"""MISE [66]: memory-interference-only slowdown estimation.

MISE observes that a memory-bound application's performance is proportional
to the rate at which its *main memory* requests are served, and estimates
slowdown as the ratio of alone and shared request service rates, measuring
the alone rate during highest-priority epochs. It shares ASM's epoch
machinery but is blind to shared-cache capacity interference — the paper's
Section 6.4 comparison (MISE 22% error vs ASM 9.9%) isolates exactly that.

All counters are read through the model's
:class:`~repro.telemetry.counters.CounterBank` and validated (epoch reads
cannot exceed quantum reads, queueing deltas cannot be negative); see
:class:`~repro.models.base.EstimateGuard` for the degradation semantics.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.harness.system import System
from repro.mem.request import MemRequest
from repro.models.base import SlowdownModel


class MiseModel(SlowdownModel):
    """MISE prior-work baseline: request-service-rate ratio, memory only."""

    name = "mise"
    uses_epochs = True

    def attach(self, system: System) -> None:
        """Hook epoch ownership and request-rate counters into ``system``."""
        super().attach(system)
        bank = self.bank
        assert bank is not None
        self._reads = bank.vec("reads")
        self._epoch_reads = bank.vec("epoch_reads")
        self._epoch_count = bank.vec("epoch_count")
        controller = system.controller
        self._queueing = bank.external(
            "queueing_cycles", lambda core: controller.queueing_cycles[core]
        )
        self._queueing.rebase()
        self._measuring = -1
        self._epoch_owners: Tuple[int, int] = (-1, -1)
        system.controller.completion_listeners.append(self._on_completion)
        system.epoch_listeners.append(self._on_epoch)
        system.measure_listeners.append(self._on_measure)

    def _on_completion(self, request: MemRequest) -> None:
        if request.is_prefetch or request.is_write:
            return
        core = request.core
        self._reads.add(core)
        if self._measuring == core:
            self._epoch_reads.add(core)

    def _on_epoch(self, owner: int) -> None:
        assert self.bank is not None
        attributed = self.bank.attribute_epoch(owner)
        self._epoch_owners = (owner, attributed)
        self._epoch_count.add(attributed)
        self._measuring = -1

    def _on_measure(self, owner: int) -> None:
        true_owner, attributed = self._epoch_owners
        if owner == true_owner:
            owner = attributed
        self._measuring = owner

    def estimate_slowdowns(self) -> List[float]:
        """Per-core MISE slowdown (alone over shared request service rate)."""
        assert self.system is not None
        assert self.bank is not None and self.guard is not None
        bank = self.bank
        guard = self.guard
        config = self.system.config
        quantum = config.quantum_cycles
        epochs_on = self.system.epochs_enabled
        estimates: List[float] = []
        # Only the post-warm-up portion of each epoch is measured.
        epoch_len = config.epoch_cycles - config.epoch_warmup_cycles
        for core in range(self.num_cores):
            reads = self._reads.read(core)
            epoch_reads = self._epoch_reads.read(core)
            epoch_count = self._epoch_count.read(core)
            queueing = self._queueing.delta(core)
            prioritized = epoch_count * epoch_len

            soft: List[str] = []
            if reads == 0 or prioritized == 0 or epoch_reads == 0:
                if epochs_on and reads > 0:
                    soft.append("no-epoch-signal")
                estimate = 1.0
            else:
                rsr_shared = reads / quantum
                denom = prioritized - queueing
                if denom <= 0:
                    denom = max(1.0, 0.05 * prioritized)
                    soft.append("degenerate-denominator")
                rsr_alone = epoch_reads / denom
                estimate = self.clamp_slowdown(rsr_alone / rsr_shared)

            hard: List[str] = []
            if epoch_reads > reads:
                hard.append("epoch-exceeds-quantum")
            if queueing < 0:
                hard.append("negative-queueing")
            hard.extend(bank.collect_flags(core))
            estimates.append(guard.resolve(core, estimate, soft, hard))
        return estimates

    def reset_quantum(self) -> None:
        """Reset counters and rebase the queueing estimator."""
        assert self.bank is not None
        self.bank.reset()
        self._queueing.rebase()
