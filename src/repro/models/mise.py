"""MISE [66]: memory-interference-only slowdown estimation.

MISE observes that a memory-bound application's performance is proportional
to the rate at which its *main memory* requests are served, and estimates
slowdown as the ratio of alone and shared request service rates, measuring
the alone rate during highest-priority epochs. It shares ASM's epoch
machinery but is blind to shared-cache capacity interference — the paper's
Section 6.4 comparison (MISE 22% error vs ASM 9.9%) isolates exactly that.
"""

from __future__ import annotations

from typing import List

from repro.harness.system import System
from repro.mem.request import MemRequest
from repro.models.base import SlowdownModel


class MiseModel(SlowdownModel):
    name = "mise"
    uses_epochs = True

    def attach(self, system: System) -> None:
        super().attach(system)
        n = system.config.num_cores
        self._reads = [0] * n
        self._epoch_reads = [0] * n
        self._epoch_count = [0] * n
        self._queueing_base = list(system.controller.queueing_cycles)
        self._measuring = -1
        system.controller.completion_listeners.append(self._on_completion)
        system.epoch_listeners.append(self._on_epoch)
        system.measure_listeners.append(self._on_measure)

    def _on_completion(self, request: MemRequest) -> None:
        if request.is_prefetch or request.is_write:
            return
        core = request.core
        self._reads[core] += 1
        if self._measuring == core:
            self._epoch_reads[core] += 1

    def _on_epoch(self, owner: int) -> None:
        self._epoch_count[owner] += 1
        self._measuring = -1

    def _on_measure(self, owner: int) -> None:
        self._measuring = owner

    def estimate_slowdowns(self) -> List[float]:
        assert self.system is not None
        config = self.system.config
        controller = self.system.controller
        quantum = config.quantum_cycles
        estimates: List[float] = []
        # Only the post-warm-up portion of each epoch is measured.
        epoch_len = config.epoch_cycles - config.epoch_warmup_cycles
        for core in range(self.num_cores):
            prioritized = self._epoch_count[core] * epoch_len
            if self._reads[core] == 0 or prioritized == 0 or self._epoch_reads[core] == 0:
                estimates.append(1.0)
                continue
            rsr_shared = self._reads[core] / quantum
            queueing = controller.queueing_cycles[core] - self._queueing_base[core]
            denom = prioritized - queueing
            if denom <= 0:
                denom = max(1.0, 0.05 * prioritized)
            rsr_alone = self._epoch_reads[core] / denom
            estimates.append(self.clamp_slowdown(rsr_alone / rsr_shared))
        return estimates

    def reset_quantum(self) -> None:
        assert self.system is not None
        n = self.num_cores
        self._reads = [0] * n
        self._epoch_reads = [0] * n
        self._epoch_count = [0] * n
        self._queueing_base = list(self.system.controller.queueing_cycles)
