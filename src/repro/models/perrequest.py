"""Shared per-request interference accounting used by FST, PTCA and STFM.

These prior works estimate, for *each* memory request, how many cycles it
was delayed by other applications, and sum those into a per-application
interference-cycle total. Summed naively the total overcounts badly because
requests overlap, so — exactly as STFM introduced its *parallelism factor*
fudge — the per-request delays are divided by the application's measured
memory-level parallelism (time-averaged outstanding misses while any miss
is outstanding).

The paper's central argument is that this per-request approach remains
inaccurate under overlapped service even with the fudge factor; that
inaccuracy emerges here naturally rather than being injected.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.harness.system import System
from repro.mem.request import MemRequest


class MlpEstimator:
    """Time-averaged memory-level parallelism for one core."""

    __slots__ = ("count", "integral", "busy", "_last")

    def __init__(self) -> None:
        self.count = 0
        self.integral = 0.0  # integral of outstanding-miss count over time
        self.busy = 0  # cycles with >= 1 outstanding miss
        self._last = 0

    def _settle(self, now: int) -> None:
        if now > self._last:
            if self.count > 0:
                self.integral += self.count * (now - self._last)
                self.busy += now - self._last
            self._last = now

    def start(self, now: int) -> None:
        """A miss enters service at cycle ``now``."""
        self._settle(now)
        self.count += 1

    def end(self, now: int) -> None:
        """A miss leaves service at cycle ``now``."""
        self._settle(now)
        self.count -= 1

    def parallelism(self, now: int) -> float:
        """Average outstanding misses over miss-busy time (>= 1.0)."""
        self._settle(now)
        if self.busy <= 0:
            return 1.0
        return max(1.0, self.integral / self.busy)

    def reset(self, now: int) -> None:
        """Zero the averages at a quantum boundary; keep in-flight counts."""
        self._settle(now)
        self.integral = 0.0
        self.busy = 0


class PerRequestAccounting:
    """Per-core memory interference cycles + miss latency statistics."""

    def __init__(
        self,
        system: System,
        latency_filter: Optional[Callable[[MemRequest], bool]] = None,
        filter_interference: bool = False,
    ) -> None:
        """``latency_filter`` restricts latency statistics to a subset of
        requests (PTCA with a sampled ATS measures latencies only on
        requests mapping to sampled sets). With ``filter_interference``
        the per-request interference cycles are *also* only accumulated on
        filtered requests — the caller must scale them back up, as sampled
        PTCA does (Section 2.2: "counted and scaled accordingly")."""
        n = system.config.num_cores
        self.system = system
        self.latency_filter = latency_filter
        self.filter_interference = filter_interference and latency_filter is not None
        self.interference_cycles = [0.0] * n
        self.latency_sum = [0.0] * n
        self.latency_count = [0] * n
        # Per-request alone-latency estimate: measured latency minus the
        # request's own attributed interference (the FST/PTCA mechanism).
        self.alone_latency_sum = [0.0] * n
        # Optional raw samples for latency-distribution studies (Fig 6).
        self.collect_samples = False
        self.alone_latency_samples: List[List[float]] = [[] for _ in range(n)]
        self._mlp = [MlpEstimator() for _ in range(n)]
        system.hierarchy.service_listeners.append(self._on_service)
        system.controller.completion_listeners.append(self._on_completion)

    def _on_service(self, core: int, is_hit: bool, is_start: bool, now: int) -> None:
        if is_hit:
            return
        if is_start:
            self._mlp[core].start(now)
        else:
            self._mlp[core].end(now)

    def _on_completion(self, request: MemRequest) -> None:
        if request.is_prefetch or request.is_write:
            return
        core = request.core
        now = self.system.engine.now
        in_sample = self.latency_filter is None or self.latency_filter(request)
        # STFM-style parallelism fudge factor: delays of overlapped requests
        # do not stall the core independently.
        parallelism = self._mlp[core].parallelism(now)
        if not self.filter_interference or in_sample:
            # Fractional by design: this is the model's float *estimate*
            # of stall cycles (attributed cycles scaled down by MLP), not
            # engine time — see the [0.0] initialisation above.
            self.interference_cycles[core] += (
                request.interference_cycles / parallelism  # lint: ignore[CYC001]
            )
        if in_sample:
            latency = request.latency
            alone_estimate = max(1.0, latency - request.interference_cycles)
            self.latency_sum[core] += latency
            self.latency_count[core] += 1
            self.alone_latency_sum[core] += alone_estimate
            if self.collect_samples:
                self.alone_latency_samples[core].append(alone_estimate)

    def parallelism(self, core: int) -> float:
        """Current MLP estimate for ``core`` (the STFM fudge factor)."""
        return self._mlp[core].parallelism(self.system.engine.now)

    def miss_busy_cycles(self, core: int) -> int:
        """Cycles with at least one outstanding miss — the hardware upper
        bound on interference cycles (a stall counter cannot increment
        more than once per cycle)."""
        mlp = self._mlp[core]
        mlp._settle(self.system.engine.now)
        return mlp.busy

    def avg_miss_latency(self, core: int, default: float = 0.0) -> float:
        """Mean measured (shared-run) miss latency for ``core``."""
        if self.latency_count[core] == 0:
            return default
        return self.latency_sum[core] / self.latency_count[core]

    def avg_alone_miss_latency(self, core: int, default: float = 0.0) -> float:
        """The model's own estimate of the alone miss service time."""
        if self.latency_count[core] == 0:
            return default
        return self.alone_latency_sum[core] / self.latency_count[core]

    def reset(self) -> None:
        """Clear all per-quantum accumulators and the MLP averages."""
        n = len(self.interference_cycles)
        now = self.system.engine.now
        self.interference_cycles = [0.0] * n
        self.latency_sum = [0.0] * n
        self.latency_count = [0] * n
        self.alone_latency_sum = [0.0] * n
        self.alone_latency_samples = [[] for _ in range(n)]
        for mlp in self._mlp:
            mlp.reset(now)
