"""Common machinery for online slowdown models.

A model attaches to a :class:`repro.harness.system.System`, registers for
the event streams it needs (LLC accesses, service intervals, DRAM
completions, epoch assignments) and produces one slowdown estimate per core
at each quantum boundary via :meth:`SlowdownModel.estimate_slowdowns`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.harness.system import System
from repro.obs.bus import TraceBus
from repro.obs.events import GUARD, MODEL
from repro.telemetry import CounterBank

#: Policies skip a reallocation decision when any core's estimate
#: confidence falls below this floor. It must stay below SOFT_CONFIDENCE:
#: soft degradations (clamped denominators, missing epoch signal) occur in
#: perfectly healthy runs and must never change fault-free policy
#: behaviour — only hard telemetry faults may push confidence this low.
POLICY_CONFIDENCE_FLOOR = 0.75

#: Confidence of a quantum whose estimate needed a soft clamp/fallback.
SOFT_CONFIDENCE = 0.9

#: Per-quantum multiplicative decay while hard telemetry faults persist.
CONFIDENCE_DECAY = 0.5


class EstimateGuard:
    """Per-core graceful degradation for a model's slowdown estimates.

    Each quantum the model resolves its raw estimate together with the
    violations it observed:

    * *soft* violations (degenerate denominators, no epoch signal) are
      conditions a healthy run can produce — the numeric fallback the
      estimator always used is kept bit-for-bit, but the quantum is
      flagged with :data:`SOFT_CONFIDENCE`;
    * *hard* violations (telemetry fault flags, broken conservation laws
      such as ``hits > accesses``) are impossible without counter faults —
      the estimate is replaced by the last good quantum's value and the
      confidence decays by :data:`CONFIDENCE_DECAY` for every consecutive
      faulty quantum.
    """

    __slots__ = ("last_good", "confidence", "reasons", "_carry")

    def __init__(self, num_cores: int) -> None:
        self.last_good: List[float] = [1.0] * num_cores
        self.confidence: List[float] = [1.0] * num_cores
        self.reasons: List[Optional[str]] = [None] * num_cores
        self._carry: List[float] = [1.0] * num_cores

    def resolve(
        self,
        core: int,
        estimate: float,
        soft: List[str],
        hard: List[str],
    ) -> float:
        """Resolve ``core``'s estimate for the ending quantum."""
        if hard:
            self._carry[core] *= CONFIDENCE_DECAY
            self.confidence[core] = self._carry[core]
            self.reasons[core] = ";".join(hard)
            return self.last_good[core]
        self._carry[core] = 1.0
        self.last_good[core] = estimate
        if soft:
            self.confidence[core] = SOFT_CONFIDENCE
            self.reasons[core] = ";".join(soft)
        else:
            self.confidence[core] = 1.0
            self.reasons[core] = None
        return estimate


class OutstandingTracker:
    """Counts cycles during which at least one event is outstanding.

    This is the union semantics Table 1 specifies for ``epoch-hit-time`` /
    ``epoch-miss-time`` ("# cycles during which the application has at
    least one outstanding hit/miss"): overlapping requests do not double
    count. The ``gate`` restricts accumulation to the application's epochs.
    """

    __slots__ = ("count", "gate_open", "busy_cycles", "_last_time")

    def __init__(self, gate_open: bool = True) -> None:
        self.count: int = 0
        self.gate_open: bool = gate_open
        self.busy_cycles: int = 0
        self._last_time: int = 0

    def _settle(self, now: int) -> None:
        if self.gate_open and self.count > 0 and now > self._last_time:
            self.busy_cycles += now - self._last_time
        self._last_time = now

    def start(self, now: int) -> None:
        """One more event becomes outstanding at cycle ``now``."""
        self._settle(now)
        self.count += 1

    def end(self, now: int) -> None:
        """One outstanding event completes at cycle ``now``."""
        self._settle(now)
        if self.count <= 0:
            raise ValueError("end() without matching start()")
        self.count -= 1

    def set_gate(self, open_: bool, now: int) -> None:
        """Open/close the accumulation gate (epoch membership) at ``now``."""
        self._settle(now)
        self.gate_open = open_

    def read(self, now: int) -> int:
        """Busy cycles accumulated up to and including cycle ``now``."""
        self._settle(now)
        return self.busy_cycles

    def reset(self, now: int) -> None:
        """Zero the accumulator at a quantum boundary; keep outstanding state."""
        self._settle(now)
        self.busy_cycles = 0
        self._last_time = now


class SlowdownModel:
    """Base class: subclasses override the hooks they need."""

    name: str = "base"
    uses_epochs: bool = False

    def __init__(self) -> None:
        self.system: Optional[System] = None
        self.estimates_history: List[List[float]] = []
        # Parallel to estimates_history: per-quantum confidence in [0, 1]
        # and the degradation reason (None while healthy) per core.
        self.confidence_history: List[List[float]] = []
        self.degraded_history: List[List[Optional[str]]] = []
        self.guard: Optional[EstimateGuard] = None
        self.bank: Optional[CounterBank] = None
        # Observability bus (repro.obs), inherited from the system at
        # attach(); None keeps every emit site a single predicate check.
        self.obs: Optional[TraceBus] = None

    # -- lifecycle ------------------------------------------------------
    def attach(self, system: System) -> None:
        """Register listeners on the system. Subclasses must call super()."""
        self.system = system
        self.guard = EstimateGuard(system.config.num_cores)
        self.bank = CounterBank(
            system.config.num_cores, spec=system.telemetry, salt=self.name
        )
        self.obs = system.obs
        system.quantum_listeners.append(self._on_quantum)

    def _on_quantum(self) -> None:
        estimates = self.estimate_slowdowns()
        self.estimates_history.append(estimates)
        guard = self.guard
        if guard is not None:
            self.confidence_history.append(list(guard.confidence))
            self.degraded_history.append(list(guard.reasons))
        obs = self.obs
        if obs is not None and obs.mask & (MODEL | GUARD):
            self._emit_trace(obs, estimates, guard)
        self.reset_quantum()

    def _emit_trace(
        self,
        obs: TraceBus,
        estimates: List[float],
        guard: Optional[EstimateGuard],
    ) -> None:
        """Publish this quantum's estimates (MODEL) and any degradations
        (GUARD) to the trace bus. Called only when a category is enabled."""
        assert self.system is not None
        now = self.system.engine.now
        if obs.mask & MODEL:
            confidence = list(guard.confidence) if guard is not None else []
            degraded = list(guard.reasons) if guard is not None else []
            obs.emit(
                now,
                MODEL,
                "estimates",
                model=self.name,
                estimates=list(estimates),
                confidence=confidence,
                degraded=degraded,
                stats=self.trace_stats(),
            )
        if obs.mask & GUARD and guard is not None:
            for core, reason in enumerate(guard.reasons):
                if reason is not None:
                    obs.emit(
                        now,
                        GUARD,
                        "degraded",
                        model=self.name,
                        core=core,
                        reason=reason,
                        confidence=guard.confidence[core],
                    )

    # -- subclass API -----------------------------------------------------
    def estimate_slowdowns(self) -> List[float]:
        """Produce one slowdown estimate per core for the ending quantum."""
        raise NotImplementedError

    def reset_quantum(self) -> None:
        """Clear per-quantum state (long-lived tag state is kept)."""

    def trace_stats(self) -> Optional[List[Dict[str, float]]]:
        """Optional per-core stats for the MODEL trace event.

        Subclasses with a richer per-quantum snapshot (ASM's
        ``AsmQuantumStats``) return one JSON-ready dict per core —
        e.g. ``car_alone``/``car_shared`` — which the trace inspector
        renders next to the estimates. ``None`` omits the field."""
        return None

    # -- helpers ----------------------------------------------------------
    @property
    def num_cores(self) -> int:
        """Core count of the attached system."""
        assert self.system is not None
        return self.system.config.num_cores

    @property
    def now(self) -> int:
        """Current simulated cycle of the attached system's engine."""
        assert self.system is not None
        return self.system.engine.now

    @staticmethod
    def clamp_slowdown(value: float, low: float = 1.0, high: float = 50.0) -> float:
        """Slowdowns below 1 or absurdly high are estimation artefacts."""
        return min(max(value, low), high)
