"""Common machinery for online slowdown models.

A model attaches to a :class:`repro.harness.system.System`, registers for
the event streams it needs (LLC accesses, service intervals, DRAM
completions, epoch assignments) and produces one slowdown estimate per core
at each quantum boundary via :meth:`SlowdownModel.estimate_slowdowns`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.harness.system import System


class OutstandingTracker:
    """Counts cycles during which at least one event is outstanding.

    This is the union semantics Table 1 specifies for ``epoch-hit-time`` /
    ``epoch-miss-time`` ("# cycles during which the application has at
    least one outstanding hit/miss"): overlapping requests do not double
    count. The ``gate`` restricts accumulation to the application's epochs.
    """

    __slots__ = ("count", "gate_open", "busy_cycles", "_last_time")

    def __init__(self, gate_open: bool = True) -> None:
        self.count: int = 0
        self.gate_open: bool = gate_open
        self.busy_cycles: int = 0
        self._last_time: int = 0

    def _settle(self, now: int) -> None:
        if self.gate_open and self.count > 0 and now > self._last_time:
            self.busy_cycles += now - self._last_time
        self._last_time = now

    def start(self, now: int) -> None:
        self._settle(now)
        self.count += 1

    def end(self, now: int) -> None:
        self._settle(now)
        if self.count <= 0:
            raise ValueError("end() without matching start()")
        self.count -= 1

    def set_gate(self, open_: bool, now: int) -> None:
        self._settle(now)
        self.gate_open = open_

    def read(self, now: int) -> int:
        self._settle(now)
        return self.busy_cycles

    def reset(self, now: int) -> None:
        self._settle(now)
        self.busy_cycles = 0
        self._last_time = now


class SlowdownModel:
    """Base class: subclasses override the hooks they need."""

    name: str = "base"
    uses_epochs: bool = False

    def __init__(self) -> None:
        self.system: Optional[System] = None
        self.estimates_history: List[List[float]] = []

    # -- lifecycle ------------------------------------------------------
    def attach(self, system: System) -> None:
        """Register listeners on the system. Subclasses must call super()."""
        self.system = system
        system.quantum_listeners.append(self._on_quantum)

    def _on_quantum(self) -> None:
        estimates = self.estimate_slowdowns()
        self.estimates_history.append(estimates)
        self.reset_quantum()

    # -- subclass API -----------------------------------------------------
    def estimate_slowdowns(self) -> List[float]:
        """Produce one slowdown estimate per core for the ending quantum."""
        raise NotImplementedError

    def reset_quantum(self) -> None:
        """Clear per-quantum state (long-lived tag state is kept)."""

    # -- helpers ----------------------------------------------------------
    @property
    def num_cores(self) -> int:
        assert self.system is not None
        return self.system.config.num_cores

    @property
    def now(self) -> int:
        assert self.system is not None
        return self.system.engine.now

    @staticmethod
    def clamp_slowdown(value: float, low: float = 1.0, high: float = 50.0) -> float:
        """Slowdowns below 1 or absurdly high are estimation artefacts."""
        return min(max(value, low), high)
