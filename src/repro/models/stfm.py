"""STFM [46]: stall-time fair memory scheduling's slowdown estimator.

STFM estimates slowdown as the ratio of shared to alone memory stall time,
computing the alone stall time by subtracting per-request interference
cycles (with a parallelism fudge factor) from the measured shared stall
time. It predates shared-cache awareness entirely; included as a secondary
baseline and for the repo's completeness.
"""

from __future__ import annotations

from typing import List

from repro.harness.system import System
from repro.models.base import OutstandingTracker, SlowdownModel
from repro.models.perrequest import PerRequestAccounting


class StfmModel(SlowdownModel):
    name = "stfm"
    uses_epochs = False

    def attach(self, system: System) -> None:
        super().attach(system)
        n = system.config.num_cores
        self._stall = [OutstandingTracker() for _ in range(n)]
        self._accounting = PerRequestAccounting(system)
        system.hierarchy.service_listeners.append(self._on_service)

    def _on_service(self, core: int, is_hit: bool, is_start: bool, now: int) -> None:
        if is_hit:
            return
        if is_start:
            self._stall[core].start(now)
        else:
            self._stall[core].end(now)

    def estimate_slowdowns(self) -> List[float]:
        assert self.system is not None
        now = self.now
        quantum = self.system.config.quantum_cycles
        estimates: List[float] = []
        for core in range(self.num_cores):
            shared_stall = self._stall[core].read(now)
            interference = self._accounting.interference_cycles[core]
            alone_stall = max(0.0, shared_stall - interference)
            compute = quantum - shared_stall
            alone_time = compute + alone_stall
            if alone_time <= 0:
                alone_time = max(1.0, 0.02 * quantum)
            estimates.append(self.clamp_slowdown(quantum / alone_time))
        return estimates

    def reset_quantum(self) -> None:
        now = self.now
        for tracker in self._stall:
            tracker.reset(now)
        self._accounting.reset()
