"""STFM [46]: stall-time fair memory scheduling's slowdown estimator.

STFM estimates slowdown as the ratio of shared to alone memory stall time,
computing the alone stall time by subtracting per-request interference
cycles (with a parallelism fudge factor) from the measured shared stall
time. It predates shared-cache awareness entirely; included as a secondary
baseline and for the repo's completeness.

Stall and interference counters are sampled through the model's
:class:`~repro.telemetry.counters.CounterBank`; see
:class:`~repro.models.base.EstimateGuard` for the degradation semantics.
"""

from __future__ import annotations

from typing import List

from repro.harness.system import System
from repro.models.base import OutstandingTracker, SlowdownModel
from repro.models.perrequest import PerRequestAccounting


class StfmModel(SlowdownModel):
    """STFM prior-work baseline: stall-time fraction with MLP fudge."""

    name = "stfm"
    uses_epochs = False

    def attach(self, system: System) -> None:
        """Hook stall trackers and per-request accounting into ``system``."""
        super().attach(system)
        n = system.config.num_cores
        bank = self.bank
        assert bank is not None
        self._stall = [OutstandingTracker() for _ in range(n)]
        acct = PerRequestAccounting(system)
        self._accounting = acct
        self._stall_sample = bank.external(
            "stall_cycles", lambda core: self._stall[core].read(self.now)
        )
        self._interference = bank.external(
            "interference_cycles", lambda core: acct.interference_cycles[core]
        )
        system.hierarchy.service_listeners.append(self._on_service)

    def _on_service(self, core: int, is_hit: bool, is_start: bool, now: int) -> None:
        if is_hit:
            return
        if is_start:
            self._stall[core].start(now)
        else:
            self._stall[core].end(now)

    def estimate_slowdowns(self) -> List[float]:
        """Per-core STFM slowdown from the stalled-time fraction."""
        assert self.system is not None
        assert self.bank is not None and self.guard is not None
        bank = self.bank
        guard = self.guard
        quantum = self.system.config.quantum_cycles
        estimates: List[float] = []
        for core in range(self.num_cores):
            shared_stall = self._stall_sample.read(core)
            interference = self._interference.read(core)
            alone_stall = max(0.0, shared_stall - interference)

            soft: List[str] = []
            compute = quantum - shared_stall
            alone_time = compute + alone_stall
            if alone_time <= 0:
                alone_time = max(1.0, 0.02 * quantum)
                soft.append("degenerate-denominator")
            estimate = self.clamp_slowdown(quantum / alone_time)

            hard: List[str] = []
            if shared_stall > quantum or shared_stall < 0 or interference < 0:
                hard.append("stall-exceeds-quantum")
            hard.extend(bank.collect_flags(core))
            estimates.append(guard.resolve(core, estimate, soft, hard))
        return estimates

    def reset_quantum(self) -> None:
        """Reset counters, accounting and the stall trackers."""
        assert self.bank is not None
        now = self.now
        for tracker in self._stall:
            tracker.reset(now)
        self._accounting.reset()
