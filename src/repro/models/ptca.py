"""PTCA [14]: per-thread cycle accounting.

Like FST, PTCA subtracts per-request interference cycles from the shared
execution time, but identifies contention misses with a per-application
auxiliary tag store instead of a pollution filter. With a *sampled* ATS
(the practical configuration), contention misses and their latencies are
observed only on requests mapping to sampled sets and scaled up — the
scaling of noisy per-request latencies is what makes sampled PTCA the least
accurate model in the paper's Figure 3 (40.4% error).

The sampled counters are registered as ``kind="ats"`` in the model's
:class:`~repro.telemetry.counters.CounterBank`, making them eligible for
set-sample corruption faults; implausible samples (contention exceeding
sampled accesses, more sampled than total accesses) trip the hard
degradation path of :class:`~repro.models.base.EstimateGuard`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.cache.auxtag import AuxiliaryTagStore
from repro.harness.system import System
from repro.mem.request import MemRequest
from repro.models.base import SlowdownModel
from repro.models.perrequest import PerRequestAccounting

if TYPE_CHECKING:
    from repro.vector.batch import RequestBatch


class PtcaModel(SlowdownModel):
    """PTCA prior-work baseline: per-request delay + cache-aware ATS."""

    name = "ptca"
    uses_epochs = False

    def __init__(self, sampled_sets: Optional[int] = None) -> None:
        super().__init__()
        self.sampled_sets = sampled_sets
        self.ats: List[AuxiliaryTagStore] = []
        # Per-core alone miss latency estimated in the last quantum (the
        # Fig 6 latency-distribution study reads this after the run).
        self.last_alone_miss_latency: List[float] = []

    def attach(self, system: System) -> None:
        """Hook the ATS and per-request accounting into ``system``."""
        super().attach(system)
        n = system.config.num_cores
        bank = self.bank
        assert bank is not None
        self.ats = [
            AuxiliaryTagStore(system.config.llc, self.sampled_sets) for _ in range(n)
        ]
        self._sampled_contention = bank.vec("sampled_contention", kind="ats")
        self._sampled_accesses = bank.vec("sampled_accesses", kind="ats")
        self._total_accesses = bank.vec("total_accesses")
        # With sampling, PTCA can only observe requests to sampled sets:
        # both their latencies and their interference cycles are measured
        # on the sample and scaled up (Section 2.2).
        latency_filter = self._request_is_sampled if self.sampled_sets else None
        acct = PerRequestAccounting(
            system, latency_filter, filter_interference=True
        )
        self._accounting = acct
        self._interference = bank.external(
            "interference_cycles", lambda core: acct.interference_cycles[core]
        )
        self._miss_busy = bank.external(
            "miss_busy", lambda core: acct.miss_busy_cycles(core)
        )
        # Columnar backend: counter updates come from staged batches (the
        # per-request latency accounting stays scalar — it keys off the
        # memory controller's service callbacks, not the access stream).
        if system.batch_plane is not None:
            system.batch_plane.register(self._on_batch)
        else:
            system.hierarchy.access_listeners.append(self._on_access)

    def _request_is_sampled(self, request: MemRequest) -> bool:
        ats = self.ats[request.core]
        set_index = request.line_addr % ats.num_sets
        return set_index % ats.sample_stride == 0

    def _on_access(
        self, core: int, line_addr: int, is_write: bool, hit: bool, now: int
    ) -> None:
        self._total_accesses.add(core)
        outcome = self.ats[core].access(line_addr)
        if not outcome.sampled:
            return
        self._sampled_accesses.add(core)
        if not hit and outcome.hit:
            self._sampled_contention.add(core)

    def _on_batch(self, batch: "RequestBatch") -> None:
        """Columnar equivalent of :meth:`_on_access` for one staged span.

        Contention is ``sampled and ATS-hit and shared-miss`` — a pure
        elementwise predicate, so the per-core counts are order-free sums
        and batching them is bit-identical to per-access increments.
        """
        from repro.vector import columns as col

        for core, idx in batch.groups_by_core():
            addrs = col.take(batch.addrs, idx)
            hits_mask = col.take(batch.hits, idx)
            self._total_accesses.add(core, len(idx))
            sampled, ats_hit = self.ats[core].access_batch(col.tolist(addrs))
            sampled_mask = col.mask_column(sampled)
            self._sampled_accesses.add(core, col.count_true(sampled_mask))
            contention = col.logical_and(
                col.logical_and(sampled_mask, col.mask_column(ats_hit)),
                col.logical_not(hits_mask),
            )
            self._sampled_contention.add(core, col.count_true(contention))

    def estimate_slowdowns(self) -> List[float]:
        """Per-core PTCA slowdown from cache- and memory-delay cycles."""
        assert self.system is not None
        assert self.bank is not None and self.guard is not None
        bank = self.bank
        guard = self.guard
        quantum = self.system.config.quantum_cycles
        hit_latency = float(self.system.config.llc.latency)
        estimates: List[float] = []
        self.last_alone_miss_latency = [
            self._accounting.avg_alone_miss_latency(core, default=float("nan"))
            for core in range(self.num_cores)
        ]
        for core in range(self.num_cores):
            sampled_contention = self._sampled_contention.read(core)
            sampled_accesses = self._sampled_accesses.read(core)
            total_accesses = self._total_accesses.read(core)
            interference_raw = self._interference.read(core)
            miss_busy = self._miss_busy.read(core)

            if sampled_accesses:
                scale = total_accesses / sampled_accesses
            else:
                scale = 1.0
            contention = sampled_contention * scale
            avg_alone_miss = self._accounting.avg_alone_miss_latency(
                core, default=hit_latency
            )
            cache_excess = (
                contention
                * max(0.0, avg_alone_miss - hit_latency)
                / self._accounting.parallelism(core)
            )
            # Interference cycles were observed only on sampled-set
            # requests; scale them to the full request stream.
            memory_interference = interference_raw
            if self.sampled_sets:
                memory_interference *= scale
            interference = memory_interference + cache_excess
            # A hardware interference counter increments at most once per
            # cycle with an outstanding miss.
            interference = min(interference, miss_busy)

            soft: List[str] = []
            alone_time = quantum - interference
            if alone_time <= 0:
                alone_time = max(1.0, 0.02 * quantum)
                soft.append("degenerate-denominator")
            estimate = self.clamp_slowdown(quantum / alone_time)

            hard: List[str] = []
            if (
                sampled_contention > sampled_accesses
                or sampled_accesses > total_accesses
            ):
                hard.append("ats-sample-implausible")
            if interference_raw < 0 or miss_busy < 0:
                hard.append("negative-interference")
            hard.extend(bank.collect_flags(core))
            estimates.append(guard.resolve(core, estimate, soft, hard))
        return estimates

    def reset_quantum(self) -> None:
        """Reset counters and accounting; the ATS keeps its learned tags."""
        assert self.bank is not None
        self.bank.reset()
        self._accounting.reset()
        for ats in self.ats:
            ats.reset_stats()
