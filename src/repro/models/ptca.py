"""PTCA [14]: per-thread cycle accounting.

Like FST, PTCA subtracts per-request interference cycles from the shared
execution time, but identifies contention misses with a per-application
auxiliary tag store instead of a pollution filter. With a *sampled* ATS
(the practical configuration), contention misses and their latencies are
observed only on requests mapping to sampled sets and scaled up — the
scaling of noisy per-request latencies is what makes sampled PTCA the least
accurate model in the paper's Figure 3 (40.4% error).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.auxtag import AuxiliaryTagStore
from repro.harness.system import System
from repro.mem.request import MemRequest
from repro.models.base import SlowdownModel
from repro.models.perrequest import PerRequestAccounting


class PtcaModel(SlowdownModel):
    name = "ptca"
    uses_epochs = False

    def __init__(self, sampled_sets: Optional[int] = None) -> None:
        super().__init__()
        self.sampled_sets = sampled_sets
        self.ats: List[AuxiliaryTagStore] = []
        # Per-core alone miss latency estimated in the last quantum (the
        # Fig 6 latency-distribution study reads this after the run).
        self.last_alone_miss_latency: List[float] = []

    def attach(self, system: System) -> None:
        super().attach(system)
        n = system.config.num_cores
        self.ats = [
            AuxiliaryTagStore(system.config.llc, self.sampled_sets) for _ in range(n)
        ]
        self._sampled_contention = [0] * n
        self._sampled_accesses = [0] * n
        self._total_accesses = [0] * n
        # With sampling, PTCA can only observe requests to sampled sets:
        # both their latencies and their interference cycles are measured
        # on the sample and scaled up (Section 2.2).
        latency_filter = self._request_is_sampled if self.sampled_sets else None
        self._accounting = PerRequestAccounting(
            system, latency_filter, filter_interference=True
        )
        system.hierarchy.access_listeners.append(self._on_access)

    def _request_is_sampled(self, request: MemRequest) -> bool:
        ats = self.ats[request.core]
        set_index = request.line_addr % ats.num_sets
        return set_index % ats.sample_stride == 0

    def _on_access(
        self, core: int, line_addr: int, is_write: bool, hit: bool, now: int
    ) -> None:
        self._total_accesses[core] += 1
        outcome = self.ats[core].access(line_addr)
        if not outcome.sampled:
            return
        self._sampled_accesses[core] += 1
        if not hit and outcome.hit:
            self._sampled_contention[core] += 1

    def estimate_slowdowns(self) -> List[float]:
        assert self.system is not None
        quantum = self.system.config.quantum_cycles
        hit_latency = float(self.system.config.llc.latency)
        estimates: List[float] = []
        self.last_alone_miss_latency = [
            self._accounting.avg_alone_miss_latency(core, default=float("nan"))
            for core in range(self.num_cores)
        ]
        for core in range(self.num_cores):
            if self._sampled_accesses[core]:
                scale = self._total_accesses[core] / self._sampled_accesses[core]
            else:
                scale = 1.0
            contention = self._sampled_contention[core] * scale
            avg_alone_miss = self._accounting.avg_alone_miss_latency(
                core, default=hit_latency
            )
            cache_excess = (
                contention
                * max(0.0, avg_alone_miss - hit_latency)
                / self._accounting.parallelism(core)
            )
            # Interference cycles were observed only on sampled-set
            # requests; scale them to the full request stream.
            memory_interference = self._accounting.interference_cycles[core]
            if self.sampled_sets:
                memory_interference *= scale
            interference = memory_interference + cache_excess
            # A hardware interference counter increments at most once per
            # cycle with an outstanding miss.
            interference = min(
                interference, self._accounting.miss_busy_cycles(core)
            )
            alone_time = quantum - interference
            if alone_time <= 0:
                alone_time = max(1.0, 0.02 * quantum)
            estimates.append(self.clamp_slowdown(quantum / alone_time))
        return estimates

    def reset_quantum(self) -> None:
        n = self.num_cores
        self._sampled_contention = [0] * n
        self._sampled_accesses = [0] * n
        self._total_accesses = [0] * n
        self._accounting.reset()
        for ats in self.ats:
            ats.reset_stats()
