"""FST [15]: Fairness via Source Throttling's slowdown estimator.

FST computes slowdown as shared/alone execution time, estimating the alone
time by subtracting, from the shared time, the cycles by which each request
was delayed due to interference:

* **memory**: per-request interference cycles from the controller, divided
  by a parallelism factor (as in STFM);
* **shared cache**: contention misses identified with a per-application
  *pollution filter* — a (counting) Bloom filter of the application's
  blocks evicted by other applications — each charged the average excess of
  a miss over a hit.

``filter_counters=None`` models the idealised exact filter the paper uses
as the "unsampled" configuration; a finite size models the practical
Bloom-filter build whose aliasing degrades accuracy (Figure 3).

Counter reads (contention misses, interference cycles, miss-busy cycles)
go through the model's :class:`~repro.telemetry.counters.CounterBank`; see
:class:`~repro.models.base.EstimateGuard` for the degradation semantics.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.pollution_filter import PollutionFilter
from repro.harness.system import System
from repro.models.base import SlowdownModel
from repro.models.perrequest import PerRequestAccounting


class FstModel(SlowdownModel):
    """FST prior-work baseline: per-request delay + pollution filter."""

    name = "fst"
    uses_epochs = False

    def __init__(self, filter_counters: Optional[int] = None) -> None:
        super().__init__()
        self.filter_counters = filter_counters
        self.filters: List[PollutionFilter] = []
        # Per-core alone miss latency estimated in the last quantum (the
        # Fig 6 latency-distribution study reads this after the run).
        self.last_alone_miss_latency: List[float] = []

    def attach(self, system: System) -> None:
        """Hook pollution filters and per-request accounting into ``system``."""
        super().attach(system)
        n = system.config.num_cores
        bank = self.bank
        assert bank is not None
        self.filters = [PollutionFilter(self.filter_counters) for _ in range(n)]
        self._contention_misses = bank.vec("contention_misses")
        acct = PerRequestAccounting(system)
        self._accounting = acct
        self._interference = bank.external(
            "interference_cycles", lambda core: acct.interference_cycles[core]
        )
        self._miss_busy = bank.external(
            "miss_busy", lambda core: acct.miss_busy_cycles(core)
        )
        system.hierarchy.llc.add_eviction_listener(self._on_evict)
        system.hierarchy.access_listeners.append(self._on_access)

    def _on_evict(self, line_addr: int, owner: int, evictor: int) -> None:
        if owner != evictor:
            self.filters[owner].on_evicted_by_other(line_addr)

    def _on_access(
        self, core: int, line_addr: int, is_write: bool, hit: bool, now: int
    ) -> None:
        if hit:
            return
        if self.filters[core].is_contention_miss(line_addr):
            self._contention_misses.add(core)
            self.filters[core].on_refetch(line_addr)

    def estimate_slowdowns(self) -> List[float]:
        """Per-core FST slowdown from summed per-request delay cycles."""
        assert self.system is not None
        assert self.bank is not None and self.guard is not None
        bank = self.bank
        guard = self.guard
        quantum = self.system.config.quantum_cycles
        hit_latency = float(self.system.config.llc.latency)
        estimates: List[float] = []
        self.last_alone_miss_latency = [
            self._accounting.avg_alone_miss_latency(core, default=float("nan"))
            for core in range(self.num_cores)
        ]
        for core in range(self.num_cores):
            contention = self._contention_misses.read(core)
            interference_raw = self._interference.read(core)
            miss_busy = self._miss_busy.read(core)
            # Each contention miss is charged its estimated *alone* miss
            # cost over a hit; the excess overlaps like any other miss, so
            # the same parallelism correction applies.
            avg_alone_miss = self._accounting.avg_alone_miss_latency(
                core, default=hit_latency
            )
            cache_excess = (
                contention
                * max(0.0, avg_alone_miss - hit_latency)
                / self._accounting.parallelism(core)
            )
            interference = interference_raw + cache_excess
            # A hardware interference counter increments at most once per
            # cycle with an outstanding miss.
            interference = min(interference, miss_busy)

            soft: List[str] = []
            alone_time = quantum - interference
            if alone_time <= 0:
                alone_time = max(1.0, 0.02 * quantum)
                soft.append("degenerate-denominator")
            estimate = self.clamp_slowdown(quantum / alone_time)

            hard: List[str] = []
            if interference_raw < 0 or miss_busy < 0:
                hard.append("negative-interference")
            hard.extend(bank.collect_flags(core))
            estimates.append(guard.resolve(core, estimate, soft, hard))
        return estimates

    def reset_quantum(self) -> None:
        """Reset counters and accounting; pollution filters persist."""
        assert self.bank is not None
        self.bank.reset()
        self._accounting.reset()
