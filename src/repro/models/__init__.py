"""Online slowdown-estimation models: ASM and the prior works it is
compared against (FST, PTCA, MISE, STFM)."""

from repro.models.base import OutstandingTracker, SlowdownModel
from repro.models.asm import AsmModel
from repro.models.fst import FstModel
from repro.models.ptca import PtcaModel
from repro.models.mise import MiseModel
from repro.models.stfm import StfmModel

__all__ = [
    "OutstandingTracker",
    "SlowdownModel",
    "AsmModel",
    "FstModel",
    "PtcaModel",
    "MiseModel",
    "StfmModel",
]
