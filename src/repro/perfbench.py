"""Perf-regression harness: wall-clock + events/sec capture into BENCH_*.json.

Importable home of the benchmark logic behind both entry points —
``benchmarks/perf_bench.py`` (the historical script, now a thin wrapper)
and the ``repro bench`` CLI verb (``run`` / ``compare`` / ``merge`` /
``ab`` subcommands).

Three benchmarks:

* **Event-loop microbenchmark** (:func:`engine_microbench`): drives
  :class:`repro.engine.Engine` with a bundle of self-rescheduling
  callbacks (several sharing timestamps, several free-running) and
  reports raw events/sec of the dispatch loop itself.
* **Columnar microbenchmark** (:func:`columnar_microbench`): the same
  periodic population expressed as windowed streams on
  :class:`repro.vector.engine.ColumnarEngine` — each stream's firings in
  a window are processed as one batch, so throughput measures the
  batched path the columnar backend rides. An equivalence sub-run
  replays an identical population (including a scalar boundary callback)
  on both engines and asserts identical event counts and callback
  totals.
* **Sweep benchmark** (:func:`sweep_bench`): a fig02-style error survey
  run serially and through the parallel campaign layer; reports wall
  clock, speedup, and whether the two produced identical results.

Results merge into a JSON file (default ``BENCH_perf.json`` at the repo
root) so every PR lands with a measured before/after. Numbers depend on
the host; the platform block and free-text ``notes`` record where a
capture was taken.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

from repro.engine import Engine


# ---------------------------------------------------------------------------
# Event-loop microbenchmark
# ---------------------------------------------------------------------------

def engine_microbench(target_events: int = 300_000, repeats: int = 5) -> dict:
    """Measure raw dispatch throughput of the event loop (best of N runs;
    shared CI boxes are noisy, and the best run is the least-perturbed one).

    The callback population mirrors what a simulation schedules: several
    periodic streams that collide on the same timestamp (core issue +
    controller wake at one cycle), plus free-running streams with co-prime
    periods so most timestamps carry a single event.
    """
    best = None
    for _ in range(repeats):
        run = _engine_microbench_once(target_events)
        if best is None or run["events_per_s"] > best["events_per_s"]:
            best = run
    best["repeats"] = repeats
    return best


def _engine_microbench_once(target_events: int) -> dict:
    engine = Engine()
    counter = [0]

    def make_recurring(period: int):
        def cb() -> None:
            counter[0] += 1
            engine.schedule(period, cb)
        return cb

    # Four streams sharing period 5 (same-cycle batches), three co-prime
    # free-runners, and one zero-delay chain emulating wake->issue pairs.
    for _ in range(4):
        engine.schedule(5, make_recurring(5))
    for period in (3, 7, 11):
        engine.schedule(period, make_recurring(period))

    def chained() -> None:
        counter[0] += 1
        engine.schedule(0, lambda: counter.__setitem__(0, counter[0] + 1))
        engine.schedule(13, chained)

    engine.schedule(13, chained)

    # Events per simulated cycle ~= 4/5 + 1/3 + 1/7 + 1/11 + 2/13 ~= 1.52.
    horizon = int(target_events / 1.52)
    start = time.perf_counter()
    engine.run(until=horizon)
    elapsed = time.perf_counter() - start
    events = engine.events_executed
    return {
        "events": events,
        "wall_s": round(elapsed, 4),
        "events_per_s": round(events / elapsed, 1),
    }


# ---------------------------------------------------------------------------
# Columnar microbenchmark
# ---------------------------------------------------------------------------

def columnar_microbench(
    target_events: int = 10_000_000, repeats: int = 5
) -> dict:
    """Throughput of the same periodic population on the columnar engine.

    The eight periodic streams become windowed vec streams — one batched
    callback per stream per window instead of one event each firing —
    and the zero-delay chain becomes a stream whose batch counts two
    events per firing. A scalar boundary stream (co-prime period 1009)
    forces regular window closes, exercising the window/merge machinery
    rather than degenerating into one giant batch.
    """
    from repro.vector import backend

    best = None
    for _ in range(repeats):
        run = _columnar_microbench_once(target_events)
        if best is None or run["events_per_s"] > best["events_per_s"]:
            best = run
    best["repeats"] = repeats
    best["backend"] = backend()
    return best


_BOUNDARY_PERIOD = 1009  # co-prime with every stream period


def _populate_columnar(engine) -> List[int]:
    """Install the microbench population as vec streams; returns the
    callback-total cell shared by every stream."""
    total = [0]

    def make_vec(mult: int = 1):
        def vec_cb(start: int, count: int, period: int) -> int:
            total[0] += count * mult
            return count * mult
        return vec_cb

    for _ in range(4):
        engine.schedule_stream(5, vec_callback=make_vec())
    for period in (3, 7, 11):
        engine.schedule_stream(period, vec_callback=make_vec())
    # The chained pair (wake->issue) counts two events per firing.
    engine.schedule_stream(13, vec_callback=make_vec(2))

    def boundary() -> None:
        total[0] += 1

    engine.schedule_stream(_BOUNDARY_PERIOD, boundary)
    return total


def _populate_scalar(engine: Engine) -> List[int]:
    """The *same* population as :func:`_populate_columnar`, expressed as
    self-rescheduling scalar callbacks (the equivalence oracle)."""
    total = [0]

    def make_recurring(period: int):
        def cb() -> None:
            total[0] += 1
            engine.schedule(period, cb)
        return cb

    for _ in range(4):
        engine.schedule(5, make_recurring(5))
    for period in (3, 7, 11):
        engine.schedule(period, make_recurring(period))

    def chained() -> None:
        total[0] += 1
        engine.schedule(0, lambda: total.__setitem__(0, total[0] + 1))
        engine.schedule(13, chained)

    engine.schedule(13, chained)
    engine.schedule(_BOUNDARY_PERIOD, make_recurring(_BOUNDARY_PERIOD))
    return total


def _columnar_microbench_once(target_events: int) -> dict:
    from repro.vector.engine import ColumnarEngine

    engine = ColumnarEngine()
    total = _populate_columnar(engine)
    # ~1.52 batched events per cycle, plus the boundary stream.
    horizon = int(target_events / 1.52)
    start = time.perf_counter()
    engine.run(until=horizon)
    elapsed = time.perf_counter() - start
    events = engine.events_executed
    assert total[0] == events, "columnar callback total diverged from engine"
    return {
        "events": events,
        "wall_s": round(elapsed, 4),
        "events_per_s": round(events / elapsed, 1),
    }


def microbench_equivalence(horizon: int = 50_000) -> dict:
    """Replay the microbench population on both engines over one horizon;
    the batched run must count exactly the events the scalar run executes."""
    from repro.vector.engine import ColumnarEngine

    scalar_engine = Engine()
    scalar_total = _populate_scalar(scalar_engine)
    scalar_engine.run(until=horizon)

    vec_engine = ColumnarEngine()
    vec_total = _populate_columnar(vec_engine)
    vec_engine.run(until=horizon)

    return {
        "horizon": horizon,
        "scalar_events": scalar_engine.events_executed,
        "columnar_events": vec_engine.events_executed,
        "scalar_total": scalar_total[0],
        "columnar_total": vec_total[0],
        "identical": (
            scalar_total[0] == vec_total[0]
            and scalar_engine.events_executed == vec_engine.events_executed
        ),
    }


# ---------------------------------------------------------------------------
# Analytic-tier benchmark (closed-form surrogate at paper scale)
# ---------------------------------------------------------------------------

def analytic_bench(quanta: int = 20, repeats: int = 3) -> dict:
    """Wall cost of one *paper-scale* cell at the analytical tier.

    The event tier cannot run the paper's native scale (4 cores, 2MB
    LLC, 100M cycles) in CI — that is why :func:`repro.config.scaled_config`
    exists. The analytic tier's cost is independent of simulated cycles,
    so this benchmark runs the full-scale cell (20 x 5M-cycle quanta)
    and records whether it stays under the 10-second acceptance bound
    (see docs/fidelity.md). The profile memo cache is cleared before
    each timed run (cold = honest); ``warm_wall_s`` shows the memoised
    re-estimate cost a sweep over shared mixes actually pays.
    """
    from repro.analytic import reuse
    from repro.analytic.runner import run_analytic
    from repro.config import SystemConfig
    from repro.workloads.mixes import random_mixes

    config = SystemConfig()  # paper-scale platform: 2MB LLC, 5M quanta
    mix = random_mixes(1, config.num_cores, seed=42)[0]
    best = None
    result = None
    for _ in range(repeats):
        reuse._PROFILE_CACHE.clear()
        start = time.perf_counter()
        result = run_analytic(mix, config, quanta=quanta)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    start = time.perf_counter()
    run_analytic(mix, config, quanta=quanta)
    warm = time.perf_counter() - start
    cycles = quanta * config.quantum_cycles
    return {
        "cores": config.num_cores,
        "quanta": quanta,
        "cycles": cycles,
        "repeats": repeats,
        "wall_s": round(best, 4),
        "warm_wall_s": round(warm, 4),
        "cycles_per_s": round(cycles / best, 1),
        "under_10s": best < 10.0,
        "slowdowns": [round(s, 4) for s in result.mean_actual_slowdowns()],
    }


# ---------------------------------------------------------------------------
# Sweep benchmark (serial vs parallel campaign execution)
# ---------------------------------------------------------------------------

def _run_sweep(num_mixes: int, quanta: int, workers: int, seed: int):
    """One fig02-style survey; returns (survey, wall_seconds)."""
    from repro.experiments import error_comparison
    from repro.resilience import Campaign

    campaign = Campaign("perf_bench", None)
    kwargs = {}
    if workers > 1:
        kwargs["workers"] = workers
    start = time.perf_counter()
    result = error_comparison.run(
        sampled=False,
        num_mixes=num_mixes,
        quanta=quanta,
        seed=seed,
        campaign=campaign,
        **kwargs,
    )
    elapsed = time.perf_counter() - start
    return result.survey, elapsed


def _surveys_identical(a, b) -> bool:
    return (
        a.model_names == b.model_names
        and a.overall == b.overall
        and a.per_app == b.per_app
        and a.per_workload == b.per_workload
    )


def sweep_bench(num_mixes: int, quanta: int, workers: int, seed: int) -> dict:
    serial_survey, serial_s = _run_sweep(num_mixes, quanta, 1, seed)
    record = {
        "num_mixes": num_mixes,
        "quanta": quanta,
        "serial_wall_s": round(serial_s, 3),
    }
    if workers > 1:
        parallel_survey, parallel_s = _run_sweep(num_mixes, quanta, workers, seed)
        record.update(
            {
                "workers": workers,
                "parallel_wall_s": round(parallel_s, 3),
                "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
                "identical_results": _surveys_identical(
                    serial_survey, parallel_survey
                ),
            }
        )
    return record


# ---------------------------------------------------------------------------
# JSON capture
# ---------------------------------------------------------------------------

def merge_results(
    path: Path, section: str, record: dict, label: str,
    notes: Optional[str] = None,
) -> None:
    data = load_results(path)
    data.setdefault("platform", {}).update(
        {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "machine": platform.machine(),
        }
    )
    if notes:
        # Notes are a label-keyed dict (capture-host context per label);
        # never clobber notes recorded by earlier captures.
        block = data.setdefault("notes", {})
        if isinstance(block, dict):
            block[label] = notes
        else:  # pragma: no cover - legacy string field
            data["notes"] = {label: notes}
    data.setdefault(section, {})[label] = record
    from repro.durability.atomic import atomic_write_text

    atomic_write_text(str(path), json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_results(path: Path) -> dict:
    if path.exists():
        try:
            return json.loads(path.read_text())
        except ValueError:
            return {}
    return {}


def merge_files(sources: Sequence[Path], dest: Path) -> dict:
    """Fold benchmark JSON files into ``dest`` (later sources win per label)."""
    merged = load_results(dest)
    for source in sources:
        incoming = load_results(source)
        for section, value in incoming.items():
            if isinstance(value, dict) and isinstance(merged.get(section), dict):
                merged[section].update(value)
            else:
                merged[section] = value
    from repro.durability.atomic import atomic_write_text

    atomic_write_text(str(dest), json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return merged


def compare_labels(path: Path, section: str, before: str, after: str) -> dict:
    """Relative change between two captures of one benchmark section."""
    data = load_results(path)
    block = data.get(section, {})
    if before not in block or after not in block:
        missing = [lbl for lbl in (before, after) if lbl not in block]
        raise KeyError(f"labels missing from {section!r}: {', '.join(missing)}")
    result = {"section": section, "before": before, "after": after}
    a, b = block[before], block[after]
    for key in ("events_per_s", "serial_wall_s", "parallel_wall_s"):
        if key in a and key in b and a[key]:
            result[key] = {
                "before": a[key],
                "after": b[key],
                "ratio": round(b[key] / a[key], 3),
            }
    return result


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def legacy_main(argv=None) -> int:
    """The historical ``benchmarks/perf_bench.py`` interface (plus the
    columnar microbenchmark, captured alongside the event-loop one)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="parallel workers for the sweep benchmark")
    parser.add_argument("--mixes", type=int, default=4,
                        help="workloads in the sweep benchmark")
    parser.add_argument("--quanta", type=int, default=2,
                        help="quanta per run in the sweep benchmark")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--micro-events", type=int, default=300_000,
                        help="approximate events in the microbenchmark")
    parser.add_argument("--columnar-events", type=int, default=10_000_000,
                        help="approximate events in the columnar arm")
    parser.add_argument("--micro-only", action="store_true",
                        help="run only the event-loop microbenchmarks")
    parser.add_argument("--sweep-only", action="store_true",
                        help="run only the sweep benchmark")
    parser.add_argument("--label", type=str, default="current",
                        help="label for this capture inside the JSON")
    parser.add_argument("--notes", type=str, default=None,
                        help="capture-host note stored in the JSON")
    parser.add_argument("--out", type=str,
                        default=str(REPO_ROOT / "BENCH_perf.json"))
    parser.add_argument("--check-equality", action="store_true",
                        help="exit non-zero unless parallel == serial and "
                             "columnar == scalar")
    args = parser.parse_args(argv)

    out = Path(args.out)
    status = 0

    if not args.sweep_only:
        micro = engine_microbench(args.micro_events)
        merge_results(out, "engine_microbench", micro, args.label,
                      notes=args.notes)
        print(f"engine_microbench[{args.label}]: "
              f"{micro['events_per_s']:,.0f} events/s "
              f"({micro['events']} events in {micro['wall_s']}s)")

        columnar = columnar_microbench(args.columnar_events)
        equivalence = microbench_equivalence()
        columnar["equivalent_to_event_engine"] = equivalence["identical"]
        merge_results(out, "columnar_microbench", columnar, args.label,
                      notes=args.notes)
        print(f"columnar_microbench[{args.label}]: "
              f"{columnar['events_per_s']:,.0f} events/s "
              f"({columnar['backend']} backend, "
              f"equivalent={equivalence['identical']})")
        if args.check_equality and not equivalence["identical"]:
            print("ERROR: columnar microbench diverged from the event engine",
                  file=sys.stderr)
            status = 1

        analytic = analytic_bench()
        merge_results(out, "analytic_bench", analytic, args.label,
                      notes=args.notes)
        print(f"analytic_bench[{args.label}]: paper-scale cell "
              f"({analytic['cycles']:,} cycles) in {analytic['wall_s']}s "
              f"cold / {analytic['warm_wall_s']}s warm "
              f"(under_10s={analytic['under_10s']})")
        if args.check_equality and not analytic["under_10s"]:
            print("ERROR: analytic tier exceeded the 10s paper-scale bound",
                  file=sys.stderr)
            status = 1

    if not args.micro_only:
        sweep = sweep_bench(args.mixes, args.quanta, args.workers, args.seed)
        merge_results(out, "sweep", sweep, args.label, notes=args.notes)
        print(f"sweep[{args.label}]: serial {sweep['serial_wall_s']}s", end="")
        if "parallel_wall_s" in sweep:
            print(f", {sweep['workers']} workers {sweep['parallel_wall_s']}s, "
                  f"speedup {sweep['speedup']}x, "
                  f"identical={sweep['identical_results']}")
            if args.check_equality and not sweep["identical_results"]:
                print("ERROR: parallel sweep results differ from serial",
                      file=sys.stderr)
                status = 1
        else:
            print()

    print(f"wrote {out}")
    return status


def bench_main(argv=None) -> int:
    """``repro bench`` verb: run / compare / merge / ab."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Performance benchmarks and the columnar A/B drill.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    run_p = sub.add_parser("run", help="capture benchmarks into a JSON file")
    # 'run' shares the legacy flag vocabulary wholesale.
    run_p.set_defaults(_passthrough=True)

    cmp_p = sub.add_parser("compare", help="compare two captured labels")
    cmp_p.add_argument("before")
    cmp_p.add_argument("after")
    cmp_p.add_argument("--section", default="engine_microbench")
    cmp_p.add_argument("--json", type=str,
                       default=str(REPO_ROOT / "BENCH_perf.json"))
    cmp_p.add_argument("--min-ratio", type=float, default=None,
                       help="exit non-zero if after/before events_per_s "
                            "falls below this ratio")

    merge_p = sub.add_parser("merge", help="fold benchmark JSONs together")
    merge_p.add_argument("sources", nargs="+")
    merge_p.add_argument("--into", required=True)

    ab_p = sub.add_parser("ab", help="columnar-vs-event bit-identity drill")
    ab_p.add_argument("--mixes", type=int, default=2)
    ab_p.add_argument("--quanta", type=int, default=2)
    ab_p.add_argument("--cores", type=int, default=4)
    ab_p.add_argument("--seed", type=int, default=42)
    ab_p.add_argument("--skip-experiments", action="store_true",
                      help="skip the fig01/fig04 JSON comparisons")
    ab_p.add_argument("--telemetry-faults", type=str,
                      default="dropped-read:0.05",
                      help="fault spec for the faulted arm ('' disables)")

    if argv and argv[0] == "run":
        # Everything after 'run' is the legacy vocabulary.
        return legacy_main(argv[1:])
    args = parser.parse_args(argv)

    if args.verb == "compare":
        try:
            result = compare_labels(
                Path(args.json), args.section, args.before, args.after
            )
        except KeyError as exc:
            print(f"repro bench: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(result, indent=2, sort_keys=True))
        if args.min_ratio is not None:
            ratio = result.get("events_per_s", {}).get("ratio")
            if ratio is not None and ratio < args.min_ratio:
                print(f"ERROR: throughput ratio {ratio} < {args.min_ratio}",
                      file=sys.stderr)
                return 1
        return 0

    if args.verb == "merge":
        merged = merge_files([Path(s) for s in args.sources], Path(args.into))
        print(f"merged {len(args.sources)} file(s) into {args.into} "
              f"({len(merged)} sections)")
        return 0

    # verb == "ab"
    from repro.vector.ab import run_ab

    report = run_ab(
        num_mixes=args.mixes,
        quanta=args.quanta,
        num_cores=args.cores,
        seed=args.seed,
        include_experiments=not args.skip_experiments,
        telemetry_faults=args.telemetry_faults or None,
    )
    print(report.summary())
    return 0 if report.ok else 1


__all__ = [
    "analytic_bench",
    "bench_main",
    "columnar_microbench",
    "compare_labels",
    "engine_microbench",
    "legacy_main",
    "merge_files",
    "merge_results",
    "microbench_equivalence",
    "sweep_bench",
]
