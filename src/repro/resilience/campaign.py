"""Checkpoint/resume for experiment campaigns.

A campaign is a sweep of per-mix runs (one experiment driver invocation).
Every completed run is persisted as one JSON line under
``results/.campaign/<experiment>/`` keyed by (experiment, variant, mix
name, mix seed, config fingerprint, quanta), so an interrupted campaign
resumes without recomputing finished mixes — resumed results deserialize
to the exact values the original run produced. The (expensive) alone-run
profiles are persisted the same way and shared across resumes.

Store layout::

    results/.campaign/<experiment>/
        runs.jsonl       completed per-mix results, one JSON object per line
        alone.jsonl      memoised alone-run profiles
        failures.jsonl   captured RunFailure records (replayable)
        metrics.jsonl    per-quantum metrics snapshots (``--profile``)
        degraded.jsonl   DegradedCell records (supervisor gave up)
        divergence.jsonl fidelity cross-validation reports (analytic vs
                         event oracle — see repro.analytic.crossval)

All files use the checksummed store format v2 of
:mod:`repro.durability.store`: a version header plus per-record sha256
and monotonic sequence numbers, appended atomically (single write →
flush → fsync). A crash tears at most the trailing line, which load
recovers by skipping; checksum-mismatched records are skipped too and
``repro campaign verify|repair`` reports/quarantines them. Legacy (v1)
plain-JSONL stores load transparently and upgrade on repair.

Retry supervision (``retry_policy``): failed cells are re-attempted
under a :class:`~repro.durability.retry.RetryPolicy` with a per-cell
circuit breaker; cells that exhaust their attempts/budget leave a
structured :class:`~repro.durability.retry.DegradedCell` record.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.parallel import CellSpec
    from repro.telemetry.spec import TelemetrySpec

from repro.config import SystemConfig
from repro.durability.retry import CircuitBreaker, DegradedCell, RetryPolicy
from repro.durability.store import ChecksummedLog, read_log
from repro.harness.runner import (
    AloneProfile,
    AloneRunCache,
    QuantumRecord,
    RunProfile,
    RunResult,
    run_alone,
    run_workload,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import (
    RunFailure,
    config_fingerprint,
    failure_table,
    stable_hash,
)
from repro.workloads.mixes import WorkloadMix
from repro.workloads.synthetic import AppSpec


def _read_jsonl(path: str) -> List[dict]:
    """Load a store file's intact records (torn/corrupt lines skipped).

    Delegates to the checksummed reader of :mod:`repro.durability.store`,
    which also accepts legacy (v1) plain-JSONL lines, so stores written
    before format v2 keep resuming.
    """
    payloads, _report = read_log(path)
    return [p for p in payloads if isinstance(p, dict)]


def mix_to_json(mix: WorkloadMix) -> dict:
    return {
        "name": mix.name,
        "seed": mix.seed,
        "specs": [dataclasses.asdict(spec) for spec in mix.specs],
    }


def mix_from_json(data: dict) -> WorkloadMix:
    return WorkloadMix(
        name=data["name"],
        specs=tuple(AppSpec(**spec) for spec in data["specs"]),
        seed=data["seed"],
    )


def result_to_json(result: RunResult) -> dict:
    return {
        # Which execution backend computed the cell. Purely informational
        # (the cell key already folds the backend in via the config
        # fingerprint when non-default); old records without it read back
        # fine because result_from_json rebuilds config from its argument.
        "engine": result.config.engine,
        "mix": mix_to_json(result.mix),
        "records": [
            {
                "index": r.index,
                "instructions": r.instructions,
                "shared_ipc": r.shared_ipc,
                "actual_slowdowns": r.actual_slowdowns,
                "estimates": r.estimates,
                "confidence": r.confidence,
                "degraded": r.degraded,
            }
            for r in result.records
        ],
    }


def result_from_json(data: dict, config: SystemConfig) -> RunResult:
    records = [
        QuantumRecord(
            index=r["index"],
            instructions=list(r["instructions"]),
            shared_ipc=list(r["shared_ipc"]),
            actual_slowdowns=list(r["actual_slowdowns"]),
            estimates={k: list(v) for k, v in r["estimates"].items()},
            # .get(): records persisted before telemetry confidence existed
            # load as fully-confident runs.
            confidence={k: list(v) for k, v in r.get("confidence", {}).items()},
            degraded={k: list(v) for k, v in r.get("degraded", {}).items()},
        )
        for r in data["records"]
    ]
    mix = mix_from_json(data["mix"])
    config = dataclasses.replace(config, num_cores=mix.num_cores)
    return RunResult(mix=mix, config=config, records=records)


@dataclasses.dataclass
class CellTiming:
    """Wall-clock accounting for one profiled campaign cell."""

    mix: str
    variant: str
    quanta: int
    wall_s: float
    events: int  # shared-run engine events

    @property
    def events_per_s(self) -> float:
        """Shared-run engine events per wall second for this cell."""
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


class CampaignStore:
    """Append-only checksummed JSONL store for one campaign's state."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._runs_path = os.path.join(root, "runs.jsonl")
        self._alone_path = os.path.join(root, "alone.jsonl")
        self._failures_path = os.path.join(root, "failures.jsonl")
        self._metrics_path = os.path.join(root, "metrics.jsonl")
        self._degraded_path = os.path.join(root, "degraded.jsonl")
        self._divergence_path = os.path.join(root, "divergence.jsonl")
        # One checksummed appender per file: tracks the next sequence
        # number and writes the v2 header on first append.
        self._logs: Dict[str, ChecksummedLog] = {}
        # Last record wins so a recomputed key supersedes stale entries.
        self._runs: Dict[str, dict] = {
            r["key"]: r["result"]
            for r in _read_jsonl(self._runs_path)
            if "key" in r and "result" in r
        }
        self._alone: Dict[str, dict] = {
            r["key"]: r
            for r in _read_jsonl(self._alone_path)
            if "key" in r and "instructions" in r
        }

    def _append(self, path: str, record: dict) -> None:
        log = self._logs.get(path)
        if log is None:
            log = ChecksummedLog(path)
            self._logs[path] = log
        log.append(record)

    # -- per-mix results ------------------------------------------------
    def get_run(self, key: str) -> Optional[dict]:
        return self._runs.get(key)

    def put_run(self, key: str, result: dict) -> None:
        self._runs[key] = result
        self._append(self._runs_path, {"key": key, "result": result})

    def __len__(self) -> int:
        return len(self._runs)

    # -- alone profiles -------------------------------------------------
    def get_alone(self, key: str) -> Optional[AloneProfile]:
        record = self._alone.get(key)
        if record is None:
            return None
        return AloneProfile(record["interval"], list(record["instructions"]))

    def put_alone(self, key: str, profile: AloneProfile) -> None:
        record = {
            "key": key,
            "interval": profile.checkpoint_interval,
            "instructions": profile.instructions,
        }
        self._alone[key] = record
        self._append(self._alone_path, record)

    # -- metrics snapshots ----------------------------------------------
    def put_metrics(self, key: str, snapshots: List[dict]) -> None:
        """Persist a run's per-quantum metrics snapshots next to its
        checkpoint (same ``key`` as :meth:`put_run`)."""
        self._append(self._metrics_path, {"key": key, "snapshots": snapshots})

    def get_metrics(self, key: str) -> Optional[List[dict]]:
        """The last metrics snapshots persisted under ``key``, if any."""
        found: Optional[List[dict]] = None
        for record in _read_jsonl(self._metrics_path):
            if record.get("key") == key and "snapshots" in record:
                found = list(record["snapshots"])
        return found

    # -- failures -------------------------------------------------------
    def append_failure(self, failure: RunFailure) -> None:
        self._append(self._failures_path, failure.to_json())

    def load_failures(self) -> List[RunFailure]:
        return [RunFailure.from_json(r) for r in _read_jsonl(self._failures_path)]

    # -- degraded cells -------------------------------------------------
    def append_degraded(self, cell: DegradedCell) -> None:
        """Persist one supervisor give-up record."""
        self._append(self._degraded_path, cell.to_json())

    def load_degraded(self) -> List[DegradedCell]:
        """Every DegradedCell recorded for this campaign."""
        return [
            DegradedCell.from_json(r)
            for r in _read_jsonl(self._degraded_path)
        ]

    # -- fidelity divergence reports ------------------------------------
    def put_divergence(self, record: dict) -> None:
        """Append one fidelity cross-validation report (see
        :mod:`repro.analytic.crossval`). The payload carries no wall
        clocks, so equal seeds append byte-equal records."""
        self._append(self._divergence_path, record)

    def load_divergence(self) -> List[dict]:
        """Every divergence report recorded for this campaign."""
        return _read_jsonl(self._divergence_path)


class PersistentAloneRunCache(AloneRunCache):
    """An :class:`AloneRunCache` that writes through to a campaign store."""

    def __init__(self, store: CampaignStore) -> None:
        super().__init__()
        self._store = store

    def get(
        self,
        mix: WorkloadMix,
        core: int,
        config: SystemConfig,
        cycles: int,
    ) -> AloneProfile:
        key = self._key(mix, core, config, cycles)
        profile = self._profiles.get(key)
        if profile is None:
            hashed = stable_hash(key)
            profile = self._store.get_alone(hashed)
            if profile is None:
                self.misses += 1
                profile = run_alone(mix.trace_for_core(core), config, cycles)
                self._store.put_alone(hashed, profile)
            else:
                self.store_hits += 1
            self._profiles[key] = profile
        else:
            self.hits += 1
        return profile

    def peek(
        self,
        mix: WorkloadMix,
        core: int,
        config: SystemConfig,
        cycles: int,
    ) -> Optional[AloneProfile]:
        key = self._key(mix, core, config, cycles)
        profile = self._profiles.get(key)
        if profile is None:
            profile = self._store.get_alone(stable_hash(key))
            if profile is not None:
                self._profiles[key] = profile
                self.store_hits += 1
        return profile

    def seed_profile(
        self,
        mix: WorkloadMix,
        core: int,
        config: SystemConfig,
        cycles: int,
        profile: AloneProfile,
    ) -> None:
        key = self._key(mix, core, config, cycles)
        self._profiles[key] = profile
        hashed = stable_hash(key)
        if self._store.get_alone(hashed) is None:
            self._store.put_alone(hashed, profile)


class Campaign:
    """Fault isolation + checkpoint/resume around a sweep of per-mix runs.

    Experiment drivers call :meth:`run_mix` instead of ``run_workload``;
    the campaign then

    * returns the persisted result without simulating when ``resume`` is
      set and the (mix, config, quanta) cell is already in the store;
    * captures any per-mix exception as a replayable :class:`RunFailure`
      and keeps going when ``keep_going`` is set (the failed mix yields
      ``None``);
    * threads ``check_invariants`` / ``wall_clock_budget_s`` into every
      run it launches;
    * persists each freshly computed result before moving on;
    * retries failed runs under ``retry_policy`` (default: one attempt,
      i.e. no retries) with a per-cell circuit breaker — see
      :mod:`repro.durability.retry`; cells the supervisor gives up on
      leave a :class:`DegradedCell` record and the final failure;
    * with ``profile`` set, times every computed cell (wall seconds,
      engine events — see :meth:`timing_table`) and snapshots a
      per-quantum :class:`~repro.obs.metrics.MetricsRegistry` into the
      store's ``metrics.jsonl`` next to the run checkpoint. Profiling is
      passive: the simulated results are bit-identical.

    With ``store_dir=None`` the campaign keeps fault isolation but skips
    persistence (useful for tests and ad-hoc sweeps).
    """

    def __init__(
        self,
        experiment: str,
        store_dir: Optional[str] = None,
        *,
        resume: bool = False,
        keep_going: bool = False,
        check_invariants: bool = False,
        wall_clock_budget_s: Optional[float] = None,
        profile: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.experiment = experiment
        self.store = CampaignStore(store_dir) if store_dir else None
        self.resume = resume
        self.keep_going = keep_going
        self.check_invariants = check_invariants
        self.wall_clock_budget_s = wall_clock_budget_s
        self.profile = profile
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = CircuitBreaker()
        self.failures: List[RunFailure] = []
        self.degraded: List[DegradedCell] = []
        self.computed = 0
        self.resumed = 0
        #: extra attempts spent on retries (0 when nothing was retried).
        self.retry_attempts = 0
        #: cells that failed at least once and then succeeded on retry.
        self.retried_cells = 0
        #: supervision counters (retry_attempts, retried_cells,
        #: degraded_cells), snapshotted into metrics.jsonl on change.
        self.supervisor_metrics = MetricsRegistry()
        self.cell_timings: List[CellTiming] = []
        #: busy-fraction of the worker pool during the last parallel
        #: fan-out (set by :func:`repro.parallel.run_cells` when profiling).
        self.pool_utilization: Optional[float] = None
        self._alone_cache: Optional[AloneRunCache] = None

    # ------------------------------------------------------------------
    def run_key(
        self,
        mix: WorkloadMix,
        config: SystemConfig,
        quanta: int,
        variant: str = "",
        *,
        telemetry: Optional["TelemetrySpec"] = None,
    ) -> str:
        key: tuple = (
            self.experiment,
            variant,
            mix.name,
            mix.seed,
            config_fingerprint(config),
            quanta,
        )
        if telemetry is not None:
            # Appended (rather than always present) so existing stores
            # keyed before telemetry faults existed still resume.
            key += (telemetry,)
        return stable_hash(key)

    def alone_cache(self) -> AloneRunCache:
        """The campaign's alone-run cache (persistent when storing).

        Memoised: every sweep in the campaign shares one cache, so its
        hit/miss statistics cover the whole campaign and repeated surveys
        reuse each other's in-memory profiles."""
        if self._alone_cache is None:
            if self.store is not None:
                self._alone_cache = PersistentAloneRunCache(self.store)
            else:
                self._alone_cache = AloneRunCache()
        return self._alone_cache

    def run_cells(
        self,
        cells: Sequence["CellSpec"],
        *,
        workers: int = 1,
    ) -> List[Optional[RunResult]]:
        """Run a batch of independent cells, fanning out across ``workers``
        processes (see :mod:`repro.parallel`). ``workers=1`` runs them
        serially through :meth:`run_mix`; results are identical."""
        from repro import parallel

        return parallel.run_cells(self, cells, workers=workers)

    def run_mix(
        self,
        mix: WorkloadMix,
        config: SystemConfig,
        *,
        quanta: int = 1,
        variant: str = "",
        **run_kwargs,
    ) -> Optional[RunResult]:
        """Run one mix under the campaign's fault/checkpoint discipline.

        Returns the :class:`RunResult`, or ``None`` when the run failed and
        ``keep_going`` captured it."""
        telemetry = run_kwargs.get("telemetry")
        key = self.run_key(mix, config, quanta, variant, telemetry=telemetry)
        if self.resume and self.store is not None:
            cached = self.store.get_run(key)
            if cached is not None:
                self.resumed += 1
                return result_from_json(cached, config)
        captured_profiles: List[RunProfile] = []
        run_metrics: Optional[MetricsRegistry] = None
        owns_profile_sink = False
        owns_run_metrics = False
        if self.profile:
            owns_profile_sink = "profile_sink" not in run_kwargs
            if owns_profile_sink:
                run_kwargs["profile_sink"] = captured_profiles.append
            owns_run_metrics = "run_metrics" not in run_kwargs
        policy = self.retry_policy
        attempts = 0
        last_fingerprint = ""
        started = time.monotonic()
        while True:
            attempts += 1
            # Fresh per-attempt mutables: counters and profiles from a
            # failed attempt must not leak into the retry, or a retried
            # cell's persisted metrics would differ from an
            # uninterrupted run's.
            if owns_profile_sink:
                captured_profiles.clear()
            if owns_run_metrics:
                run_metrics = MetricsRegistry()
                run_kwargs["run_metrics"] = run_metrics
            try:
                if config.engine == "analytic":
                    # Closed-form surrogate: no System, no scheduler, no
                    # telemetry — only the profile sink carries over.
                    from repro.analytic.runner import run_analytic

                    result = run_analytic(
                        mix,
                        config,
                        quanta=quanta,
                        profile_sink=run_kwargs.get("profile_sink"),
                    )
                else:
                    result = run_workload(
                        mix,
                        config,
                        quanta=quanta,
                        check_invariants=self.check_invariants,
                        wall_clock_budget_s=self.wall_clock_budget_s,
                        **run_kwargs,
                    )
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                failure = RunFailure.from_exception(
                    exc,
                    experiment=self.experiment,
                    variant=variant,
                    mix=mix,
                    config=config,
                    quanta=quanta,
                    telemetry=(
                        telemetry.to_json() if telemetry is not None else None
                    ),
                )
                fingerprint = last_fingerprint = failure.fingerprint()
                self.breaker.record_failure(
                    fingerprint, failure.error_type, failure.message
                )
                elapsed = time.monotonic() - started
                if self.may_retry(fingerprint, attempts, elapsed):
                    self.note_retry(fingerprint)
                    delay = policy.delay_s(attempts, fingerprint)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                self.record_give_up(failure, attempts, elapsed)
                if not self.keep_going:
                    raise
                return None
            break  # attempt succeeded
        if attempts > 1:
            self.note_retry_success(last_fingerprint)
        if self.store is not None:
            self.store.put_run(key, result_to_json(result))
        self.computed += 1
        if captured_profiles:
            profile = captured_profiles[0]
            self.record_timing(
                mix.name, variant, quanta,
                profile.wall_time_s, profile.events_executed,
            )
        if run_metrics is not None and self.store is not None:
            self.store.put_metrics(key, run_metrics.snapshots)
        return result

    # -- retry supervision (shared by run_mix and repro.parallel) -------
    def may_retry(
        self, cell_fingerprint: str, attempts: int, elapsed_s: float
    ) -> bool:
        """Whether a failed cell gets another attempt: attempts left,
        circuit closed, and wall-clock budget not exhausted."""
        return (
            attempts < self.retry_policy.max_attempts
            and self.breaker.allows(cell_fingerprint)
            and self.retry_policy.within_budget(elapsed_s)
        )

    def note_retry(self, cell_fingerprint: str) -> None:
        """Account one retry attempt (metrics + counters)."""
        self.retry_attempts += 1
        self.supervisor_metrics.counter("supervisor.retry_attempts").inc()
        self._snap_supervisor()

    def note_retry_success(self, cell_fingerprint: str) -> None:
        """A cell that had failed succeeded on retry."""
        self.retried_cells += 1
        self.breaker.record_success(cell_fingerprint)
        self.supervisor_metrics.counter("supervisor.retried_cells").inc()
        self._snap_supervisor()

    def record_give_up(
        self, failure: RunFailure, attempts: int, elapsed_s: float
    ) -> None:
        """Record a cell's final failure (and, when the policy could
        have retried, the structured :class:`DegradedCell` outcome)."""
        self.failures.append(failure)
        if self.store is not None:
            self.store.append_failure(failure)
        if not self.retry_policy.supervised:
            return
        fingerprint = failure.fingerprint()
        if not self.breaker.allows(fingerprint):
            reason = "circuit_open"
        elif not self.retry_policy.within_budget(elapsed_s):
            reason = "budget_exhausted"
        else:
            reason = "attempts_exhausted"
        cell = DegradedCell.from_failure(
            failure, reason=reason, attempts=attempts
        )
        self.degraded.append(cell)
        if self.store is not None:
            self.store.append_degraded(cell)
        self.supervisor_metrics.counter("supervisor.degraded_cells").inc()
        self._snap_supervisor()

    def _snap_supervisor(self) -> None:
        """Snapshot supervision counters into the store's metrics.jsonl
        (last record wins under the ``__supervisor__`` key)."""
        registry = self.supervisor_metrics
        registry.snap(len(registry.snapshots))
        if self.store is not None:
            self.store.put_metrics("__supervisor__", registry.snapshots[-1:])

    # ------------------------------------------------------------------
    def record_timing(
        self, mix: str, variant: str, quanta: int, wall_s: float, events: int
    ) -> None:
        """Append one profiled cell's wall-clock accounting."""
        self.cell_timings.append(
            CellTiming(
                mix=mix, variant=variant, quanta=quanta,
                wall_s=wall_s, events=events,
            )
        )

    def timing_table(self) -> str:
        """Render the per-cell wall-clock timings (``--profile`` output)."""
        if not self.cell_timings:
            return "no profiled cells"
        lines = [
            f"{'mix':24s} {'variant':16s} {'quanta':>6s} "
            f"{'wall_s':>8s} {'events':>10s} {'events/s':>10s}"
        ]
        for t in self.cell_timings:
            lines.append(
                f"{t.mix:24s} {t.variant:16s} {t.quanta:>6d} "
                f"{t.wall_s:>8.3f} {t.events:>10d} {t.events_per_s:>10,.0f}"
            )
        total_wall = sum(t.wall_s for t in self.cell_timings)
        total_events = sum(t.events for t in self.cell_timings)
        lines.append(
            f"{'total':24s} {'':16s} {'':>6s} "
            f"{total_wall:>8.3f} {total_events:>10d} "
            f"{total_events / total_wall if total_wall > 0 else 0.0:>10,.0f}"
        )
        if self.pool_utilization is not None:
            lines.append(f"pool-worker utilization: {self.pool_utilization:.0%}")
        return "\n".join(lines)

    def failure_summary(self) -> str:
        return failure_table(self.failures)

    def degraded_summary(self) -> str:
        """One line per cell the supervisor gave up on."""
        if not self.degraded:
            return "no degraded cells"
        return "\n".join(cell.describe() for cell in self.degraded)

    def summary(self) -> str:
        parts = [f"{self.computed} computed"]
        if self.resumed:
            parts.append(f"{self.resumed} resumed")
        if self.retried_cells:
            parts.append(
                f"{self.retried_cells} recovered by retry "
                f"({self.retry_attempts} retry attempts)"
            )
        elif self.retry_attempts:
            parts.append(f"{self.retry_attempts} retry attempts")
        if self.degraded:
            parts.append(f"{len(self.degraded)} DEGRADED")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        line = f"campaign {self.experiment}: " + ", ".join(parts)
        cache = self._alone_cache
        if cache is not None and (cache.hits or cache.misses or cache.store_hits):
            line += f"; {cache.summary()}"
        return line


__all__ = [
    "Campaign",
    "CampaignStore",
    "CellTiming",
    "PersistentAloneRunCache",
    "mix_from_json",
    "mix_to_json",
    "result_from_json",
    "result_to_json",
]
