"""Deterministic fault injectors.

Used by the resilience tests (and available for chaos-style campaign
drills) to prove that fault isolation, the watchdog and the invariant
guards actually catch the failure shapes they claim to:

* :class:`ExplodingModel` — a slowdown model that raises at a chosen
  quantum boundary (a NaN-producing or buggy model mid-campaign);
* :class:`FlakyModel` — a model that fails exactly once (sentinel-file
  gated), the transient shape supervised retries recover from;
* :class:`CorruptingTrace` — a trace that yields a corrupt record, or
  raises, after a chosen number of records (trace decode errors);
* :class:`EngineStallInjector` — stops the event loop at a chosen cycle,
  reproducing the "queue went dead, time silently clamps" hang;
* :class:`SpinInjector` — schedules a zero-progress self-rescheduling
  event at a chosen cycle, reproducing a live-locked event loop that only
  the wall-clock watchdog can catch;
* :class:`CounterCorruptionInjector` — mutates platform state (e.g. a
  cache hit counter) at a chosen cycle, for invariant-guard drills.

Everything is deterministic: injectors fire at fixed cycles/indices so a
failing campaign replays identically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from repro.cpu.trace import TraceIterator, TraceRecord
from repro.harness.system import System
from repro.models.base import SlowdownModel
from repro.workloads.mixes import WorkloadMix


class InjectedFault(RuntimeError):
    """Raised by injectors so tests can tell injected faults from real bugs."""


class ExplodingModel(SlowdownModel):
    """A model that raises :class:`InjectedFault` at quantum ``explode_at``
    (0-based) and estimates a constant slowdown before that."""

    name = "exploding"

    def __init__(self, explode_at: int = 0, estimate: float = 1.0) -> None:
        super().__init__()
        self.explode_at = explode_at
        self.estimate = estimate
        self._quantum = 0

    def estimate_slowdowns(self) -> List[float]:
        quantum = self._quantum
        self._quantum += 1
        if quantum >= self.explode_at:
            raise InjectedFault(
                f"injected model fault at quantum {quantum} "
                f"(cycle {self.now})"
            )
        return [self.estimate] * self.num_cores


class ProcessKillerModel(SlowdownModel):
    """Kills the whole interpreter at the first quantum boundary.

    Simulates a hard worker death (segfault, OOM kill) rather than a
    Python exception — the shape that breaks a process pool. Only ever
    attach this inside a sacrificial worker process."""

    name = "killer"

    def estimate_slowdowns(self) -> List[float]:
        os._exit(13)


# Module-level model builders, picklable by reference, for driving the
# parallel execution layer's failure paths from tests and chaos drills
# (see repro.parallel.CellSpec.model_builder).

def benign_model_factories(estimate: float = 1.0):
    """A single constant-estimate model (an ExplodingModel set to never
    fire) — the cheapest possible picklable cell recipe."""
    return {"constant": lambda: ExplodingModel(1 << 30, estimate=estimate)}


def exploding_model_factories(explode_at: int = 0):
    """A model that raises :class:`InjectedFault` at quantum ``explode_at``."""
    return {"exploding": lambda: ExplodingModel(explode_at)}


def process_killer_factories():
    """A model that hard-kills its process at the first quantum boundary."""
    return {"killer": lambda: ProcessKillerModel()}


def flaky_model_factories(sentinel: str, mode: str = "raise"):
    """A model that fails once (recording the fact in ``sentinel``) and
    then behaves — the transient-failure shape retries recover from."""
    return {"flaky": lambda: FlakyModel(sentinel, mode)}


def flaky_node_model_factories(config, sentinel: str, mode: str = "kill"):
    """Fleet-node recipe (the ``FleetSpec.model_builder`` shape, called
    as ``builder(config, *args)``) whose model fails exactly once —
    published under the ``asm`` name so the fleet supervisor reads its
    estimates. The fleet determinism drills inject this to prove a
    parallel fleet with a worker crash matches a crash-free serial one."""
    return {"asm": lambda: FlakyModel(sentinel, mode)}


class FlakyModel(SlowdownModel):
    """A model whose fault is *transient*: it fails until a sentinel file
    exists, creating the sentinel on the way down, so the next attempt of
    the same cell succeeds. ``mode="raise"`` raises
    :class:`InjectedFault`; ``mode="kill"`` hard-kills the process (the
    retryable ``WorkerCrash`` shape). Drives the supervised-retry paths."""

    name = "flaky"

    def __init__(
        self, sentinel: str, mode: str = "raise", estimate: float = 1.0
    ) -> None:
        if mode not in ("raise", "kill"):
            raise ValueError("mode must be 'raise' or 'kill'")
        super().__init__()
        self.sentinel = sentinel
        self.mode = mode
        self.estimate = estimate

    def estimate_slowdowns(self) -> List[float]:
        if not os.path.exists(self.sentinel):
            # Grandfathered in lint-baseline.json: the sentinel is scratch
            # test state, not campaign state — losing it to a crash only
            # makes the fault fire once more, which is the point.
            with open(self.sentinel, "w") as handle:
                handle.write("failed once\n")
            if self.mode == "kill":
                os._exit(13)
            raise InjectedFault(
                f"injected transient fault (sentinel {self.sentinel})"
            )
        return [self.estimate] * self.num_cores


class CorruptingTrace(Iterator[TraceRecord]):
    """Wraps a trace; after ``good_records`` records either raises
    :class:`InjectedFault` (default) or yields one corrupt record with a
    negative gap and address (``mode="yield"``)."""

    def __init__(
        self,
        inner: TraceIterator,
        good_records: int,
        mode: str = "raise",
    ) -> None:
        if mode not in ("raise", "yield"):
            raise ValueError("mode must be 'raise' or 'yield'")
        self.inner = inner
        self.good_records = good_records
        self.mode = mode
        self._served = 0

    def __iter__(self) -> "CorruptingTrace":
        return self

    def __next__(self) -> TraceRecord:
        if self._served >= self.good_records:
            if self.mode == "raise":
                raise InjectedFault(
                    f"injected trace corruption after {self._served} records"
                )
            self._served += 1
            return TraceRecord(gap=-1, line_addr=-1, is_write=False)
        self._served += 1
        return next(self.inner)


@dataclass(frozen=True)
class TraceFaultMix(WorkloadMix):
    """A workload mix whose shared-run trace for ``fault_core`` corrupts
    after ``good_records`` records. Alone-run traces stay clean, so only
    the shared run of this mix fails."""

    fault_core: int = 0
    good_records: int = 100
    mode: str = "raise"

    def traces(self):
        traces = super().traces()
        traces[self.fault_core] = CorruptingTrace(
            traces[self.fault_core], self.good_records, self.mode
        )
        return traces

    @classmethod
    def wrap(
        cls,
        mix: WorkloadMix,
        fault_core: int = 0,
        good_records: int = 100,
        mode: str = "raise",
    ) -> "TraceFaultMix":
        return cls(
            name=mix.name,
            specs=mix.specs,
            seed=mix.seed,
            fault_core=fault_core,
            good_records=good_records,
            mode=mode,
        )


class EngineStallInjector:
    """Stops the event loop at ``at_cycle``: every event after it remains
    queued, simulated time silently clamps — exactly the hang shape the
    quantum watchdog exists for."""

    def __init__(self, at_cycle: int) -> None:
        self.at_cycle = at_cycle

    def attach(self, system: System) -> None:
        system.engine.schedule_at(self.at_cycle, system.engine.stop)


class SpinInjector:
    """From ``at_cycle`` on, re-schedules itself every cycle doing nothing,
    so simulated progress continues but a configurable number of wasted
    events per cycle burns wall-clock time; with ``forever=True`` (delay 0)
    the loop live-locks at ``at_cycle`` and only a wall-clock deadline can
    abort it."""

    def __init__(self, at_cycle: int, forever: bool = True) -> None:
        self.at_cycle = at_cycle
        self.forever = forever
        self._engine = None

    def attach(self, system: System) -> None:
        self._engine = system.engine
        self._engine.schedule_at(self.at_cycle, self._spin)

    def _spin(self) -> None:
        # delay 0: the engine never advances past at_cycle.
        self._engine.schedule(0 if self.forever else 1, self._spin)


class CounterCorruptionInjector:
    """Applies ``mutate(system)`` at ``at_cycle`` — e.g. bump a cache hit
    counter — to drill the invariant guards."""

    def __init__(self, at_cycle: int, mutate: Callable[[System], None]) -> None:
        self.at_cycle = at_cycle
        self.mutate = mutate
        self._system: Optional[System] = None

    def attach(self, system: System) -> None:
        self._system = system
        system.engine.schedule_at(self.at_cycle, self._fire)

    def _fire(self) -> None:
        self.mutate(self._system)


__all__ = [
    "CorruptingTrace",
    "CounterCorruptionInjector",
    "EngineStallInjector",
    "ExplodingModel",
    "FlakyModel",
    "InjectedFault",
    "ProcessKillerModel",
    "SpinInjector",
    "TraceFaultMix",
    "benign_model_factories",
    "exploding_model_factories",
    "flaky_model_factories",
    "flaky_node_model_factories",
    "process_killer_factories",
]
