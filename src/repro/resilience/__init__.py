"""Resilience subsystem: fault isolation, invariant guards, checkpoint/resume.

Modules:

* :mod:`repro.resilience.faults` — :class:`RunFailure` records, config
  fingerprints, failure tables, deterministic replay;
* :mod:`repro.resilience.invariants` — opt-in conservation-law checks
  (:class:`InvariantChecker` / :class:`InvariantViolation`);
* :mod:`repro.resilience.campaign` — :class:`Campaign` orchestration and
  the JSONL checkpoint store under ``results/.campaign/``;
* :mod:`repro.resilience.watchdog` — hung-quantum detection (wall-clock
  budgets, dead-event-queue stalls);
* :mod:`repro.resilience.inject` — deterministic fault injectors for tests
  and chaos drills.

Attribute access is lazy (PEP 562): ``repro.harness.runner`` imports the
invariant/watchdog submodules while :mod:`repro.resilience.campaign`
imports the runner, so eagerly importing every submodule here would create
an import cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "Campaign": "repro.resilience.campaign",
    "CampaignStore": "repro.resilience.campaign",
    "PersistentAloneRunCache": "repro.resilience.campaign",
    "RunFailure": "repro.resilience.faults",
    "config_fingerprint": "repro.resilience.faults",
    "failure_table": "repro.resilience.faults",
    "rebuild_mix": "repro.resilience.faults",
    "replay_failure": "repro.resilience.faults",
    "stable_hash": "repro.resilience.faults",
    "InvariantChecker": "repro.resilience.invariants",
    "InvariantViolation": "repro.resilience.invariants",
    "MIN_ACTUAL_SLOWDOWN": "repro.resilience.invariants",
    "QuantumWatchdog": "repro.resilience.watchdog",
    "WatchdogStall": "repro.resilience.watchdog",
    "WatchdogTimeout": "repro.resilience.watchdog",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
