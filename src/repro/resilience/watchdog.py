"""Watchdogs for hung or silently-stalled quanta.

:class:`repro.engine.Engine.run` clamps simulation time to ``until`` when
the event queue drains early, which silently converts a dead simulation
(an exhausted trace, a scheduler that stopped issuing, a component that
called :meth:`Engine.stop`) into a quantum full of fictitious idle cycles.
:class:`QuantumWatchdog` turns both failure shapes into diagnosable
exceptions:

* a **wall-clock budget** per quantum, enforced inside the event loop
  (:class:`repro.engine.DeadlineExceeded`, re-exported here as
  :data:`WatchdogTimeout`);
* a **stall check** at every quantum boundary: the engine queue must not
  have drained while cores still had work, the engine must not have been
  stopped mid-quantum, and at least one unfinished core must have
  committed instructions.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.engine import DeadlineExceeded

# A hung event loop is aborted via the same exception the engine raises.
WatchdogTimeout = DeadlineExceeded


class WatchdogStall(RuntimeError):
    """A quantum made no forward progress (dead event queue or dead cores).

    ``diagnosis`` carries the per-core evidence so a :class:`RunFailure`
    record preserves what the simulation looked like when it died.
    """

    def __init__(self, message: str, diagnosis: Optional[dict] = None) -> None:
        super().__init__(message)
        self.diagnosis = diagnosis or {}


class QuantumWatchdog:
    """Per-quantum liveness guard used by ``run_workload``.

    ``wall_clock_budget_s`` bounds the real time one quantum may take
    (``None`` disables the wall-clock guard; the stall check always runs).
    """

    def __init__(self, wall_clock_budget_s: Optional[float] = None) -> None:
        self.wall_clock_budget_s = wall_clock_budget_s

    def next_deadline(self) -> Optional[float]:
        """Absolute monotonic deadline for the quantum about to run."""
        if self.wall_clock_budget_s is None:
            return None
        return time.monotonic() + self.wall_clock_budget_s

    def check_quantum(
        self,
        system,
        prev_instructions: Sequence[int],
        instructions: Sequence[int],
        quantum_index: int,
    ) -> None:
        """Raise :class:`WatchdogStall` if the quantum that just ended was
        dead. A core that legitimately finished its trace is not a stall."""
        engine = system.engine
        finished = [core.finished for core in system.cores]
        if all(finished):
            return
        progressed = [
            done > prev
            for prev, done in zip(prev_instructions, instructions)
        ]
        diagnosis = self._diagnose(
            system, quantum_index, finished, prev_instructions, instructions
        )
        if engine.stopped_early:
            raise WatchdogStall(
                f"engine was stopped mid-quantum {quantum_index} at cycle "
                f"{engine.now}; simulated time was clamped",
                diagnosis,
            )
        if engine.drained_early:
            raise WatchdogStall(
                f"event queue drained before the end of quantum "
                f"{quantum_index} (cycle {engine.now}) with unfinished "
                f"cores; simulated time was clamped",
                diagnosis,
            )
        if not any(p for p, f in zip(progressed, finished) if not f):
            raise WatchdogStall(
                f"no core committed any instruction during quantum "
                f"{quantum_index} (cycle {engine.now}): the simulation is "
                "stalled",
                diagnosis,
            )

    @staticmethod
    def _diagnose(
        system,
        quantum_index: int,
        finished: List[bool],
        prev_instructions: Sequence[int],
        instructions: Sequence[int],
    ) -> dict:
        return {
            "quantum": quantum_index,
            "cycle": system.engine.now,
            "pending_events": system.engine.pending_events,
            "finished": list(finished),
            "committed_delta": [
                done - prev
                for prev, done in zip(prev_instructions, instructions)
            ],
            "inflight_misses": [core.inflight_misses for core in system.cores],
            "outstanding_reads": [
                system.controller.outstanding_reads(core)
                for core in range(system.config.num_cores)
            ],
        }


__all__ = ["QuantumWatchdog", "WatchdogStall", "WatchdogTimeout"]
