"""Structured failure records for fault-isolated experiment campaigns.

A campaign sweeping many workload mixes should survive one crashing mix.
When a per-mix run raises, the campaign captures a :class:`RunFailure`
carrying everything needed to *deterministically replay* the failing run —
the full application specs, the mix seed, a fingerprint of the platform
configuration and the quantum count — alongside the exception and
traceback. Campaigns finish with a failure-summary table, and
:func:`replay_failure` re-runs a recorded failure in isolation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.workloads.mixes import WorkloadMix
from repro.workloads.synthetic import AppSpec


def stable_hash(obj: object) -> str:
    """Deterministic short hex digest of ``repr(obj)``.

    Safe for (nested) frozen dataclasses, tuples, ints and strings, whose
    reprs are stable across processes — unlike ``hash()``, which is
    randomised per interpreter for strings.
    """
    return hashlib.sha256(repr(obj).encode("utf-8")).hexdigest()[:16]


def config_fingerprint(config: SystemConfig) -> str:
    """Fingerprint of the full platform configuration.

    Two runs with equal fingerprints simulate identical platforms, so the
    fingerprint keys checkpoint stores and failure-replay records.

    The execution backend is part of the fingerprint only when it is not
    the default: the columnar backend is bit-identical by contract, but a
    cell computed by it should say so in its key; dropping the default
    ``engine='event'`` suffix keeps every fingerprint (and thus every
    existing campaign store) from before the field existed valid.
    """
    text = repr(config)
    default_suffix = ", engine='event')"
    if config.engine == "event" and text.endswith(default_suffix):
        text = text[: -len(default_suffix)] + ")"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class RunFailure:
    """One captured per-mix failure, sufficient for deterministic replay."""

    experiment: str
    variant: str
    mix_name: str
    mix_seed: int
    specs: List[dict]  # full AppSpec fields, one dict per core
    config_fingerprint: str
    quanta: int
    error_type: str
    message: str
    traceback: str = ""
    diagnosis: Dict[str, object] = field(default_factory=dict)
    # Telemetry-fault spec (TelemetrySpec.to_json()) active during the run,
    # or None for perfect telemetry. Recorded so replay_failure reproduces
    # injected counter faults bit-identically.
    telemetry: Optional[dict] = None

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        *,
        experiment: str,
        variant: str,
        mix: WorkloadMix,
        config: SystemConfig,
        quanta: int,
        telemetry: Optional[dict] = None,
    ) -> "RunFailure":
        diagnosis = getattr(exc, "diagnosis", None)
        return cls(
            experiment=experiment,
            variant=variant,
            mix_name=mix.name,
            mix_seed=mix.seed,
            specs=[dataclasses.asdict(spec) for spec in mix.specs],
            config_fingerprint=config_fingerprint(config),
            quanta=quanta,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            diagnosis=dict(diagnosis) if isinstance(diagnosis, dict) else {},
            telemetry=telemetry,
        )

    def fingerprint(self) -> str:
        """Identity of the failing (experiment, mix, platform, length) cell."""
        key: tuple = (
            self.experiment,
            self.variant,
            self.mix_name,
            self.mix_seed,
            self.config_fingerprint,
            self.quanta,
        )
        if self.telemetry is not None:
            # Appended (rather than always present) so fingerprints of
            # fault-free failures match records from earlier versions.
            key += (tuple(sorted(self.telemetry.items())),)
        return stable_hash(key)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "RunFailure":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


def rebuild_mix(failure: RunFailure) -> WorkloadMix:
    """Reconstruct the exact failing workload mix from a failure record."""
    specs = tuple(AppSpec(**spec) for spec in failure.specs)
    return WorkloadMix(name=failure.mix_name, specs=specs, seed=failure.mix_seed)


def replay_failure(failure: RunFailure, config: SystemConfig, **run_kwargs):
    """Re-run the failing mix on ``config`` (which must match the recorded
    fingerprint) — the deterministic simulator reproduces the failure, or a
    fixed build proves it is gone. Extra kwargs pass to ``run_workload``."""
    recorded = failure.config_fingerprint
    actual = config_fingerprint(config)
    if recorded != actual:
        raise ValueError(
            f"config fingerprint mismatch: failure was recorded on "
            f"{recorded}, replay config is {actual}"
        )
    from repro.harness.runner import run_workload

    run_kwargs.setdefault("quanta", failure.quanta)
    if failure.telemetry is not None and "telemetry" not in run_kwargs:
        from repro.telemetry.spec import TelemetrySpec

        run_kwargs["telemetry"] = TelemetrySpec.from_json(failure.telemetry)
    return run_workload(rebuild_mix(failure), config, **run_kwargs)


def failure_table(failures: Sequence[RunFailure]) -> str:
    """Plain-text summary table of a campaign's captured failures."""
    from repro.experiments.common import format_table

    rows = [
        [
            f.variant or f.experiment,
            f.mix_name,
            f.mix_seed,
            f.error_type,
            f.fingerprint(),
            f.message if len(f.message) <= 60 else f.message[:57] + "...",
        ]
        for f in failures
    ]
    return format_table(
        ["variant", "mix", "seed", "error", "fingerprint", "message"], rows
    )


__all__ = [
    "RunFailure",
    "config_fingerprint",
    "failure_table",
    "rebuild_mix",
    "replay_failure",
    "stable_hash",
]
