"""Opt-in conservation-law checks for the simulated platform.

The simulator maintains several redundant views of the same events (the
functional cache counts hits, the hierarchy counts demand accesses, the
controller queues mirror the MSHR file, ASM's epoch counters subdivide the
access stream). Bugs and corrupted state break the *conservation laws*
relating those views long before they show up as wrong headline numbers.

:class:`InvariantChecker` attaches to a :class:`System` and validates at
every quantum boundary (before the models reset their counters):

* **engine time monotonicity** — the clock advanced since the last check;
* **cache conservation** — per core, demand hits + demand misses +
  secondary (MSHR-coalesced) misses equals the functional cache's
  hits + misses;
* **MSHR/queue consistency** — every queued read at the memory controller
  has a matching MSHR entry (no orphaned requests);
* **ASM epoch accounting** — for every attached :class:`AsmModel`, the
  Section 4 counters are consistent with the quantum counters and the
  epoch budget (epoch accesses never exceed quantum accesses, sampled ATS
  hits never exceed sampled ATS accesses, epochs granted never exceed the
  quantum's epoch budget);
* **ground truth sanity** — actual measured slowdowns stay above
  :data:`MIN_ACTUAL_SLOWDOWN` (interference can only slow applications
  down; values below ~1 signal a corrupted alone profile).

Violations raise :class:`InvariantViolation` naming the component and the
cycle, so a campaign can capture them as per-mix failures. Everything here
is opt-in (``run_workload(..., check_invariants=True)`` or the CLI's
``--check-invariants``): the checks walk the controller queues and cost a
few percent of run time.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.harness.system import System
from repro.models.asm import AsmModel

# Tolerance below the physical lower bound of 1.0: checkpoint-granularity
# noise in the alone profile can put a legitimate quantum slightly below 1.
MIN_ACTUAL_SLOWDOWN = 0.85


class InvariantViolation(AssertionError):
    """A simulation conservation law failed.

    ``component`` names the violated subsystem, ``cycle`` the simulated
    time of the check that caught it.
    """

    def __init__(self, component: str, cycle: int, message: str) -> None:
        super().__init__(f"[{component} @ cycle {cycle}] {message}")
        self.component = component
        self.cycle = cycle
        self.detail = message


class InvariantChecker:
    """Validates platform conservation laws at quantum boundaries."""

    def __init__(
        self,
        system: System,
        models: Sequence[object] = (),
    ) -> None:
        self.system = system
        self.asm_models: List[AsmModel] = [
            m for m in models if isinstance(m, AsmModel)
        ]
        self.checks_run = 0
        self._last_time = -1
        self._attached = False

    def attach(self) -> None:
        """Register for quantum boundaries, ahead of the models' own
        listeners so counters are checked before they are reset."""
        if not self._attached:
            self._attached = True
            self.system.quantum_listeners.insert(0, self.check)

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Run every structural invariant; raises on the first violation."""
        now = self.system.engine.now
        if now <= self._last_time:
            raise InvariantViolation(
                "engine",
                now,
                f"time did not advance (previous check at {self._last_time})",
            )
        self._check_cache_conservation(now)
        self._check_controller_consistency(now)
        for model in self.asm_models:
            self._check_asm_accounting(model, now)
        self._last_time = now
        self.checks_run += 1

    def check_actual_slowdowns(
        self, slowdowns: Sequence[float], quantum_index: int
    ) -> None:
        """Ground-truth guard run by the harness once actual slowdowns for
        a quantum are computed (NaN means "no progress" and is skipped)."""
        now = self.system.engine.now
        for core, value in enumerate(slowdowns):
            if math.isnan(value):
                continue
            if value < MIN_ACTUAL_SLOWDOWN:
                raise InvariantViolation(
                    "ground-truth",
                    now,
                    f"core {core} actual slowdown {value:.3f} < "
                    f"{MIN_ACTUAL_SLOWDOWN} in quantum {quantum_index}: "
                    "shared run outpaced the alone run",
                )

    # ------------------------------------------------------------------
    def _check_cache_conservation(self, now: int) -> None:
        hierarchy = self.system.hierarchy
        llc = hierarchy.llc
        for core in range(self.system.config.num_cores):
            seen = (
                hierarchy.demand_accesses(core)
                + hierarchy.secondary_misses[core]
            )
            counted = llc.hits[core] + llc.misses[core]
            if seen != counted:
                raise InvariantViolation(
                    "shared_cache",
                    now,
                    f"core {core}: hierarchy saw {seen} demand accesses "
                    f"(hits {hierarchy.demand_hits[core]} + misses "
                    f"{hierarchy.demand_misses[core]} + secondary "
                    f"{hierarchy.secondary_misses[core]}) but the cache "
                    f"counted {counted} (hits {llc.hits[core]} + misses "
                    f"{llc.misses[core]})",
                )

    def _check_controller_consistency(self, now: int) -> None:
        hierarchy = self.system.hierarchy
        controller = self.system.controller
        for channel, queue in enumerate(controller.read_queues):
            for request in queue:
                if request.line_addr not in hierarchy.mshr:
                    raise InvariantViolation(
                        "memory_controller",
                        now,
                        f"channel {channel} holds a read for line "
                        f"{request.line_addr:#x} (core {request.core}) with "
                        "no matching MSHR entry: request leaked or MSHR "
                        "entry lost",
                    )

    def _check_asm_accounting(self, model: AsmModel, now: int) -> None:
        config = self.system.config
        epoch_budget = config.quantum_cycles // config.epoch_cycles + 1
        for core in range(config.num_cores):
            accesses = model._accesses[core]
            hits = model._hits[core]
            misses = model._misses[core]
            if hits + misses != accesses:
                raise InvariantViolation(
                    "asm",
                    now,
                    f"core {core}: quantum hits {hits} + misses {misses} "
                    f"!= accesses {accesses}",
                )
            epoch_accesses = model._epoch_hits[core] + model._epoch_misses[core]
            if epoch_accesses > accesses:
                raise InvariantViolation(
                    "asm",
                    now,
                    f"core {core}: epoch accesses {epoch_accesses} exceed "
                    f"quantum accesses {accesses}: epoch gating is broken",
                )
            sampled_acc = model._epoch_sampled_ats_accesses[core]
            if (
                model._epoch_sampled_ats_hits[core] > sampled_acc
                or model._epoch_sampled_shared_hits[core] > sampled_acc
            ):
                raise InvariantViolation(
                    "asm",
                    now,
                    f"core {core}: sampled ATS hits "
                    f"({model._epoch_sampled_ats_hits[core]} ATS / "
                    f"{model._epoch_sampled_shared_hits[core]} shared) "
                    f"exceed sampled accesses {sampled_acc}",
                )
        total_epochs = sum(model._epoch_count)
        if total_epochs > epoch_budget:
            raise InvariantViolation(
                "asm",
                now,
                f"{total_epochs} epochs granted this quantum, budget is "
                f"{epoch_budget} ({config.quantum_cycles} cycles / "
                f"{config.epoch_cycles}-cycle epochs)",
            )


__all__ = ["InvariantChecker", "InvariantViolation", "MIN_ACTUAL_SLOWDOWN"]
