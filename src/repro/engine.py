"""Deterministic discrete-event simulation engine.

All simulator components share one :class:`Engine`. Components schedule
callbacks at integer cycle timestamps; ties are broken by insertion order so
that identical inputs always produce identical simulations.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]

# How often (in executed events) the run loop samples the wall clock when a
# deadline is armed. Power of two so the check compiles to a cheap mask.
_DEADLINE_CHECK_MASK = 0x3FF


class DeadlineExceeded(RuntimeError):
    """A wall-clock deadline expired while the event loop was running.

    Raised from :meth:`Engine.run` so that a hung or pathologically slow
    quantum can be aborted and diagnosed instead of burning the rest of a
    campaign's time budget.
    """

    def __init__(self, now: int, pending_events: int, overshoot_s: float) -> None:
        super().__init__(
            f"wall-clock deadline exceeded (overshot by {overshoot_s:.3f}s) at "
            f"cycle {now} with {pending_events} pending events"
        )
        self.now = now
        self.pending_events = pending_events
        self.overshoot_s = overshoot_s


class Engine:
    """A heapq-based event loop with integer cycle time."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callback]] = []
        self._seq: int = 0
        self._stopped: bool = False
        # Diagnostics for the last run() call: did the queue drain before
        # ``until`` was reached / did stop() interrupt it? The watchdog in
        # the run harness uses these to turn a silent time clamp into a
        # diagnosable failure.
        self.drained_early: bool = False
        self.stopped_early: bool = False
        self.events_executed: int = 0

    def schedule(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callback) -> None:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def stop(self) -> None:
        """Request that :meth:`run` return before the next event."""
        self._stopped = True

    def run(
        self,
        until: Optional[int] = None,
        wall_deadline: Optional[float] = None,
    ) -> int:
        """Run events until the queue drains or ``until`` cycles is reached.

        Returns the final simulation time. Events scheduled exactly at
        ``until`` are not executed; time is clamped to ``until``.

        ``wall_deadline`` is an absolute :func:`time.monotonic` timestamp;
        when it passes while events are still being executed the loop raises
        :class:`DeadlineExceeded` (checked every ~1K events, so a single
        long-running callback is only caught on return).
        """
        self._stopped = False
        self.drained_early = False
        self.stopped_early = False
        queue = self._queue
        executed = 0
        while queue and not self._stopped:
            time, _seq, callback = queue[0]
            if until is not None and time >= until:
                self.now = until
                self.events_executed = executed
                return self.now
            heapq.heappop(queue)
            self.now = time
            callback()
            executed += 1
            if (
                wall_deadline is not None
                and (executed & _DEADLINE_CHECK_MASK) == 0
                and _time.monotonic() > wall_deadline
            ):
                self.events_executed = executed
                raise DeadlineExceeded(
                    self.now, len(queue), _time.monotonic() - wall_deadline
                )
        self.events_executed = executed
        self.stopped_early = self._stopped
        if until is not None and self.now < until:
            self.drained_early = not self._stopped
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._queue)
