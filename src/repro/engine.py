"""Deterministic discrete-event simulation engine.

All simulator components share one :class:`Engine`. Components schedule
callbacks at integer cycle timestamps; ties are broken by insertion order so
that identical inputs always produce identical simulations.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]


class Engine:
    """A heapq-based event loop with integer cycle time."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callback]] = []
        self._seq: int = 0
        self._stopped: bool = False

    def schedule(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callback) -> None:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def stop(self) -> None:
        """Request that :meth:`run` return before the next event."""
        self._stopped = True

    def run(self, until: Optional[int] = None) -> int:
        """Run events until the queue drains or ``until`` cycles is reached.

        Returns the final simulation time. Events scheduled exactly at
        ``until`` are not executed; time is clamped to ``until``.
        """
        self._stopped = False
        queue = self._queue
        while queue and not self._stopped:
            time, _seq, callback = queue[0]
            if until is not None and time >= until:
                self.now = until
                return self.now
            heapq.heappop(queue)
            self.now = time
            callback()
        if until is not None and self.now < until:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._queue)
