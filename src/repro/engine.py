"""Deterministic discrete-event simulation engine.

All simulator components share one :class:`Engine`. Components schedule
callbacks at integer cycle timestamps; ties are broken by insertion order so
that identical inputs always produce identical simulations.

The queue is a calendar of per-timestamp FIFO buckets (a dict keyed by
cycle) plus a heap of the distinct timestamps. Scheduling into an existing
cycle is a dict lookup and a list append; the heap is touched once per
distinct cycle rather than once per event, and no per-event tuple is
allocated. Insertion order within a bucket *is* the tie-break order, so the
determinism contract is identical to a (time, seq, callback) heap.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable, Dict, List, Optional

Callback = Callable[[], None]

_heappush = heapq.heappush

# How often (in executed events) the run loop samples the wall clock when a
# deadline is armed. The first sample happens right after the first event so
# a single slow callback at the head of a run cannot evade the watchdog for
# a whole window.
_DEADLINE_CHECK_EVENTS = 1024


class DeadlineExceeded(RuntimeError):
    """A wall-clock deadline expired while the event loop was running.

    Raised from :meth:`Engine.run` so that a hung or pathologically slow
    quantum can be aborted and diagnosed instead of burning the rest of a
    campaign's time budget.
    """

    def __init__(self, now: int, pending_events: int, overshoot_s: float) -> None:
        super().__init__(
            f"wall-clock deadline exceeded (overshot by {overshoot_s:.3f}s) at "
            f"cycle {now} with {pending_events} pending events"
        )
        self.now = now
        self.pending_events = pending_events
        self.overshoot_s = overshoot_s


class Engine:
    """A bucket-queue event loop with integer cycle time."""

    def __init__(self) -> None:
        self.now: int = 0
        # Invariant: a timestamp is in the ``_times`` heap if and only if it
        # has a (non-empty) bucket in ``_buckets``.
        self._buckets: Dict[int, List[Callback]] = {}
        self._times: List[int] = []
        # Bound once: ``schedule`` runs once per event and the dict object
        # never changes, so skip the two attribute hops per call.
        self._bucket_get = self._buckets.get
        self._stopped: bool = False
        # Diagnostics for the last run() call: did the queue drain before
        # ``until`` was reached / did stop() interrupt it? The watchdog in
        # the run harness uses these to turn a silent time clamp into a
        # diagnosable failure.
        self.drained_early: bool = False
        self.stopped_early: bool = False
        self.events_executed: int = 0
        # Observability hook (repro.obs): when set, called once per run()
        # with (events_executed, wall_seconds). One None check per run()
        # call — never per event — so the disabled path costs nothing.
        self.run_observer: Optional[Callable[[int, float], None]] = None

    def schedule(self, delay: int, callback: Callback) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        bucket = self._bucket_get(time)
        if bucket is None:
            self._buckets[time] = [callback]
            _heappush(self._times, time)
        else:
            bucket.append(callback)

    def schedule_at(self, time: int, callback: Callback) -> None:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, current time is {self.now}"
            )
        bucket = self._bucket_get(time)
        if bucket is None:
            self._buckets[time] = [callback]
            _heappush(self._times, time)
        else:
            bucket.append(callback)

    def stop(self) -> None:
        """Request that :meth:`run` return before the next event."""
        self._stopped = True

    def run(
        self,
        until: Optional[int] = None,
        wall_deadline: Optional[float] = None,
    ) -> int:
        """Run events until the queue drains or ``until`` cycles is reached.

        Returns the final simulation time. Events scheduled exactly at
        ``until`` are not executed; time is clamped to ``until``.

        ``wall_deadline`` is an absolute :func:`time.monotonic` timestamp;
        when it passes while events are still being executed the loop raises
        :class:`DeadlineExceeded`. The clock is sampled after the first
        event, every ~1K events after that, and once more when the queue
        drains, so neither a slow leading callback nor a slow trailing one
        escapes the check.

        When :attr:`run_observer` is set it receives
        ``(events_executed, wall_seconds)`` after the loop finishes —
        including abnormal exits, so stage profiles account aborted
        quanta too. The wall clock is read only for that report and
        never reaches simulation state.
        """
        observer = self.run_observer
        if observer is not None:
            start_mono = _time.perf_counter()  # lint: ignore[DET001]
            try:
                return self._run_loop(until, wall_deadline)
            finally:
                elapsed = _time.perf_counter() - start_mono  # lint: ignore[DET001]
                observer(self.events_executed, elapsed)
        return self._run_loop(until, wall_deadline)

    def _run_loop(
        self,
        until: Optional[int] = None,
        wall_deadline: Optional[float] = None,
    ) -> int:
        self._stopped = False
        self.drained_early = False
        self.stopped_early = False
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        executed = 0
        # First sample right after the first event; never when disarmed.
        # The check stays inside the bucket drain loop because a zero-delay
        # self-rescheduling callback can keep one bucket growing forever —
        # exactly the live-lock the deadline exists to catch.
        next_deadline_check = 1 if wall_deadline is not None else (1 << 62)
        while times and not self._stopped:
            time = times[0]
            if until is not None and time >= until:
                self.now = until
                self.events_executed = executed
                return until
            self.now = time
            heappop(times)
            bucket = buckets[time]
            i = 0
            # Drain the bucket in insertion order with a plain list
            # iterator: CPython's list iterator re-reads the list length on
            # every step, so same-cycle events a callback appends mid-drain
            # are picked up, in order, within this batch. The finally block
            # keeps the queue consistent however the drain ends —
            # completion, stop(), deadline, or a callback raising: consumed
            # events are dropped, unconsumed ones stay pending.
            try:
                for callback in bucket:
                    i += 1
                    callback()
                    executed += 1
                    if self._stopped:
                        break
                    if executed >= next_deadline_check:
                        next_deadline_check = executed + _DEADLINE_CHECK_EVENTS
                        # Watchdog only: the wall clock never reaches
                        # simulation state, it can only abort the run.
                        now_mono = _time.monotonic()  # lint: ignore[DET001]
                        if now_mono > wall_deadline:
                            self.events_executed = executed
                            pending = (
                                sum(len(b) for b in buckets.values()) - i
                            )
                            raise DeadlineExceeded(
                                self.now, pending, now_mono - wall_deadline,
                            )
            finally:
                if i < len(bucket):
                    del bucket[:i]
                    _heappush(times, time)
                else:
                    del buckets[time]
        self.events_executed = executed
        self.stopped_early = self._stopped
        if wall_deadline is not None and not self._stopped and executed:
            # Watchdog only (see above): a drain-time overshoot still
            # raises, but the clock never influences simulation state.
            now_mono = _time.monotonic()  # lint: ignore[DET001]
            if now_mono > wall_deadline:
                raise DeadlineExceeded(
                    self.now,
                    sum(len(b) for b in buckets.values()),
                    now_mono - wall_deadline,
                )
        if until is not None and self.now < until:
            self.drained_early = not self._stopped
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        return sum(len(b) for b in self._buckets.values())
