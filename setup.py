"""Setup shim: enables legacy editable installs in environments without
the ``wheel`` package (all metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
