#!/usr/bin/env python3
"""Check relative markdown links (stdlib only; used by the CI docs job).

Scans the given markdown files (or the repo's documentation set by
default) for inline links and images, and verifies that every *relative*
target exists on disk. External schemes (http/https/mailto), pure
anchors and bare autolinks are ignored; a ``#fragment`` suffix on a
relative target is stripped before the existence check. Link targets
inside fenced code blocks are ignored.

Exit status: 0 if every relative link resolves, 1 otherwise (each broken
link is reported as ``file:line: broken link -> target``).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

DEFAULT_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/architecture.md",
    "docs/models.md",
    "docs/fidelity.md",
)

#: inline links/images: [text](target) / ![alt](target); stops at the
#: first unescaped ')' so titles ("...") are carried into the target and
#: stripped below.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_links(text):
    """Yield (line_number, target) for every inline link outside fences."""
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield number, match.group(1)


def check_file(path: Path, repo_root: Path):
    """Return a list of (line, target) broken relative links in ``path``."""
    broken = []
    text = path.read_text(encoding="utf-8")
    for line, target in iter_links(text):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:
            continue
        if resolved.startswith("/"):
            candidate = repo_root / resolved.lstrip("/")
        else:
            candidate = path.parent / resolved
        if not candidate.exists():
            broken.append((line, target))
    return broken


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        help=f"markdown files to check (default: {', '.join(DEFAULT_FILES)})",
    )
    args = parser.parse_args(argv)

    repo_root = Path(__file__).resolve().parent.parent
    names = args.files or [
        name for name in DEFAULT_FILES if (repo_root / name).is_file()
    ]
    failures = 0
    checked = 0
    for name in names:
        path = Path(name)
        if not path.is_absolute():
            path = repo_root / name
        if not path.is_file():
            print(f"{name}: no such file", file=sys.stderr)
            failures += 1
            continue
        checked += 1
        for line, target in check_file(path, repo_root):
            print(f"{name}:{line}: broken link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"check_links: {failures} problem(s)", file=sys.stderr)
        return 1
    print(f"check_links: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
