#!/usr/bin/env python
"""Slowdown-aware cache partitioning (ASM-Cache, Section 7.1).

Runs the same cache-hungry workload three ways — unpartitioned LRU,
Utility-based Cache Partitioning, and ASM-Cache — and reports fairness
(maximum slowdown) and performance (harmonic speedup) for each, plus the
way allocation ASM-Cache converged to.
"""

from repro import (
    AloneRunCache,
    AsmCachePolicy,
    AsmModel,
    UcpPolicy,
    make_mix,
    run_workload,
    scaled_config,
)


def main() -> None:
    config = scaled_config()
    mix = make_mix(["mcf", "soplex", "ft", "lbm"], seed=9)
    alone_cache = AloneRunCache()
    print(f"Workload: {', '.join(spec.name for spec in mix.specs)}\n")

    last_policy = {}

    def asm_cache_factory(models):
        policy = AsmCachePolicy(models["asm"])
        last_policy["asm-cache"] = policy
        return policy

    schemes = {
        "no partitioning": dict(),
        "UCP": dict(policy_factories=[lambda models: UcpPolicy()]),
        "ASM-Cache": dict(
            model_factories={
                "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets)
            },
            policy_factories=[asm_cache_factory],
        ),
    }

    for name, kwargs in schemes.items():
        result = run_workload(
            mix, config, quanta=3, alone_cache=alone_cache, **kwargs
        )
        slowdowns = result.mean_actual_slowdowns()
        print(f"{name}:")
        print("  slowdowns: "
              + ", ".join(f"{spec.name}={s:.2f}"
                          for spec, s in zip(mix.specs, slowdowns)))
        print(f"  max slowdown {result.max_slowdown():.2f}, "
              f"harmonic speedup {result.harmonic_speedup():.3f}")

    allocation = last_policy["asm-cache"].last_allocation
    print("\nASM-Cache final way allocation "
          f"({config.llc.associativity} ways): "
          + ", ".join(f"{spec.name}={w}"
                      for spec, w in zip(mix.specs, allocation)))


if __name__ == "__main__":
    main()
