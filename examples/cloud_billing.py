#!/usr/bin/env python
"""Fair pricing in consolidated cloud systems (Section 7.4).

Two tenants' jobs share a machine. A resource-time billing scheme charges
each tenant for wall-clock time regardless of interference; a slowdown-
aware scheme divides the measured time by ASM's online slowdown estimate,
charging each tenant only for the time the job *would* have taken alone.
"""

from repro import AsmModel, make_mix, run_workload, scaled_config
from repro.harness import metrics

RATE_PER_MCYCLE = 0.25  # arbitrary currency units


def main() -> None:
    config = scaled_config()
    mix = make_mix(["ycsb", "lbm", "tpcc", "mcf"], seed=21)
    tenants = [spec.name for spec in mix.specs]

    result = run_workload(
        mix,
        config,
        model_factories={
            "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets)
        },
        quanta=3,
    )

    cycles = len(result.records) * config.quantum_cycles
    naive_bill = RATE_PER_MCYCLE * cycles / 1e6
    print(f"Machine time used per job: {cycles / 1e6:.1f} Mcycles "
          f"(naive bill: {naive_bill:.2f} per tenant)\n")

    print(f"{'tenant':8s} {'est.slowdown':>12s} {'actual':>7s} "
          f"{'fair bill':>10s} {'overcharge avoided':>19s}")
    for core, tenant in enumerate(tenants):
        estimates = [r.estimates["asm"][core] for r in result.records]
        actual = result.mean_actual_slowdowns()[core]
        est = metrics.mean(estimates)
        fair = naive_bill / est
        print(f"{tenant:8s} {est:12.2f} {actual:7.2f} "
              f"{fair:10.2f} {naive_bill - fair:19.2f}")

    print("\nEach tenant pays for alone-equivalent time: the slower a job "
          "was made by co-runners, the larger its rebate.")


if __name__ == "__main__":
    main()
