#!/usr/bin/env python
"""Slowdown-aware job migration (Section 7.5).

Two simulated machines each run four consolidated jobs. Machine A's mix is
pathologically contended; machine B's is mild. A migration controller that
only sees per-machine miss counts cannot tell *who is hurting*; ASM's
slowdown estimates identify both the overloaded machine and the most-
victimised job, which is then migrated to the other machine. We verify
with ground truth that the migration helped.
"""

from repro import AloneRunCache, AsmModel, make_mix, run_workload, scaled_config

MACHINE_A = ["mcf", "soplex", "ft", "lbm"]  # heavily contended
MACHINE_B = ["povray", "calculix", "h264ref", "gcc"]  # mild


def measure(apps, seed, label, alone_cache):
    config = scaled_config()
    mix = make_mix(apps, seed=seed, name=label)
    result = run_workload(
        mix,
        config,
        model_factories={
            "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets)
        },
        quanta=2,
        alone_cache=alone_cache,
    )
    estimates = result.records[-1].estimates["asm"]
    return result, estimates


def main() -> None:
    cache = AloneRunCache()
    result_a, est_a = measure(MACHINE_A, seed=31, label="machineA", alone_cache=cache)
    result_b, est_b = measure(MACHINE_B, seed=32, label="machineB", alone_cache=cache)

    print("ASM slowdown estimates per machine:")
    for name, apps, est in (("A", MACHINE_A, est_a), ("B", MACHINE_B, est_b)):
        line = ", ".join(f"{a}={s:.2f}" for a, s in zip(apps, est))
        print(f"  machine {name}: {line}")

    # Migration decision: move the most slowed-down job off the machine
    # with the highest estimated maximum slowdown.
    victim_index = max(range(len(est_a)), key=lambda i: est_a[i])
    victim = MACHINE_A[victim_index]
    print(f"\nmigrating {victim} (estimated slowdown {est_a[victim_index]:.2f}) "
          f"from machine A to machine B")

    # Swap the victim with machine B's least-slowed job.
    donor_index = min(range(len(est_b)), key=lambda i: est_b[i])
    new_a = list(MACHINE_A)
    new_b = list(MACHINE_B)
    new_a[victim_index], new_b[donor_index] = new_b[donor_index], victim

    result_a2, _ = measure(new_a, seed=31, label="machineA2", alone_cache=cache)
    result_b2, _ = measure(new_b, seed=32, label="machineB2", alone_cache=cache)

    before = max(result_a.max_slowdown(), result_b.max_slowdown())
    after = max(result_a2.max_slowdown(), result_b2.max_slowdown())
    print(f"\ncluster-wide worst slowdown (ground truth): "
          f"{before:.2f} -> {after:.2f}")
    print("better" if after < before else "no improvement this time")


if __name__ == "__main__":
    main()
