#!/usr/bin/env python
"""Quickstart: estimate application slowdowns online with ASM.

Builds a 4-core workload (mcf + bzip2 + libquantum + h264ref stand-ins),
runs it on the simulated platform with the Application Slowdown Model
attached, and compares ASM's online per-quantum estimates against the
ground truth obtained from real alone runs.
"""

from repro import AsmModel, make_mix, run_workload, scaled_config


def main() -> None:
    config = scaled_config()
    mix = make_mix(["mcf", "bzip2", "libquantum", "h264ref"], seed=1)

    print(f"Workload: {', '.join(spec.name for spec in mix.specs)}")
    print(f"Platform: {config.num_cores} cores, "
          f"{config.llc.size_bytes // 1024}KB shared LLC, "
          f"DDR3-1333 x{config.dram.channels} channel")
    print(f"Quantum {config.quantum_cycles} cycles, "
          f"epoch {config.epoch_cycles} cycles, "
          f"ATS sampling {config.ats_sampled_sets} sets\n")

    result = run_workload(
        mix,
        config,
        model_factories={
            "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets)
        },
        quanta=3,
    )

    for record in result.records:
        print(f"quantum {record.index}:")
        for core, spec in enumerate(mix.specs):
            actual = record.actual_slowdowns[core]
            estimate = record.estimates["asm"][core]
            print(
                f"  core {core} ({spec.name:11s}) "
                f"actual slowdown {actual:5.2f}   ASM estimate {estimate:5.2f}"
            )
    print(f"\nmean ASM estimation error: {result.mean_error('asm'):.1f}%")
    print(f"workload unfairness (max slowdown): {result.max_slowdown():.2f}")
    print(f"harmonic speedup: {result.harmonic_speedup():.3f}")


if __name__ == "__main__":
    main()
