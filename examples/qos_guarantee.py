#!/usr/bin/env python
"""Soft slowdown guarantees (ASM-QoS, Section 7.3).

An interactive application of interest (h264ref stand-in) is consolidated
with three memory-hungry co-runners. Naive-QoS hands it the entire shared
cache; ASM-QoS-X grants only as many ways as its slowdown bound X needs,
leaving the rest to the co-runners.
"""

from repro import (
    AloneRunCache,
    AsmModel,
    AsmQosPolicy,
    NaiveQosPolicy,
    make_mix,
    run_workload,
    scaled_config,
)

TARGET = 0  # core running the application of interest


def main() -> None:
    config = scaled_config()
    mix = make_mix(["h264ref", "mcf", "soplex", "sphinx3"], seed=3)
    alone_cache = AloneRunCache()
    apps = [spec.name for spec in mix.specs]
    print(f"Application of interest: {apps[TARGET]}; co-runners: {apps[1:]}\n")

    def report(name, result):
        slowdowns = result.mean_actual_slowdowns()
        line = ", ".join(f"{a}={s:.2f}" for a, s in zip(apps, slowdowns))
        print(f"{name:14s} {line}")

    naive = run_workload(
        mix, config, quanta=3, alone_cache=alone_cache,
        policy_factories=[lambda models: NaiveQosPolicy(TARGET)],
    )
    report("naive-qos", naive)

    for bound in (1.5, 2.0, 2.5, 3.0):
        result = run_workload(
            mix, config, quanta=3, alone_cache=alone_cache,
            model_factories={
                "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets)
            },
            policy_factories=[
                lambda models, b=bound: AsmQosPolicy(models["asm"], TARGET, b)
            ],
        )
        report(f"asm-qos-{bound}", result)

    print("\nLooser bounds trade the target's slack for co-runner relief.")


if __name__ == "__main__":
    main()
