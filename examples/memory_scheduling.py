#!/usr/bin/env python
"""Memory scheduler comparison (Section 7.2's baselines plus BLISS).

Runs one memory-intensive workload under five memory-controller policies —
FR-FCFS, PARBS, TCM, BLISS and ASM-Mem — and reports fairness (maximum
slowdown) and performance (harmonic speedup) from ground truth.
"""

from repro import (
    AloneRunCache,
    AsmMemPolicy,
    AsmModel,
    make_mix,
    run_workload,
    scaled_config,
)
from repro.mem.schedulers import BlissScheduler, ParbsScheduler, TcmScheduler


def main() -> None:
    config = scaled_config()
    mix = make_mix(["mcf", "lbm", "omnetpp", "is"], seed=41)
    cache = AloneRunCache()
    print(f"Workload: {', '.join(s.name for s in mix.specs)}\n")
    print(f"{'scheduler':10s} {'max_slowdown':>12s} {'harmonic_speedup':>17s}")

    schemes = {
        "frfcfs": dict(),
        "parbs": dict(scheduler_factory=ParbsScheduler),
        "tcm": dict(scheduler_factory=lambda: TcmScheduler(mix.num_cores)),
        "bliss": dict(scheduler_factory=lambda: BlissScheduler(mix.num_cores)),
        "asm-mem": dict(
            model_factories={
                "asm": lambda: AsmModel(sampled_sets=config.ats_sampled_sets)
            },
            policy_factories=[lambda models: AsmMemPolicy(models["asm"])],
        ),
    }
    for name, kwargs in schemes.items():
        result = run_workload(mix, config, quanta=3, alone_cache=cache, **kwargs)
        print(f"{name:10s} {result.max_slowdown():12.2f} "
              f"{result.harmonic_speedup():17.3f}")


if __name__ == "__main__":
    main()
